package dist

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"glasswing/internal/blockstore"
	"glasswing/internal/core"
	"glasswing/internal/kv"
	"glasswing/internal/obs"
)

// Join connects one worker process to the coordinator at coordAddr,
// executes its share of the job, and returns when the job ends. The
// application is resolved by name through the registry; listenAddr is the
// peer-facing listener (use ":0" to let the kernel pick). Telemetry (may be
// nil) receives this process's slice of the conservation ledger.
func Join(coordAddr, listenAddr string, tun Tuning, tel *obs.Telemetry) error {
	led := newLedger(tel)
	_, err := runWorker(workerConfig{
		coordAddr:  coordAddr,
		listenAddr: listenAddr,
		tun:        tun,
		led:        led,
		resolve:    RegistryResolver,
		localSpans: true,
	})
	led.publish()
	return err
}

// Resolver reconstructs an application from its wire spec. Code never
// crosses the network: both ends run the same binary and look the app up
// locally (registry.go provides the default; loopback injects the job's
// App directly).
type Resolver func(spec AppSpec) (*core.App, func(key []byte, n int) int, error)

// workerConfig configures one worker node.
type workerConfig struct {
	coordAddr  string
	listenAddr string // peer-facing listener ("127.0.0.1:0" for loopback)
	tun        Tuning
	led        *ledger // shared in loopback; nil = private
	resolve    Resolver
	// mapFault, if set, fails map attempts after the kernel but before any
	// partitioning or sends — the same injection point as the sim core's
	// FaultInjector, so failed attempts have no observable shuffle effect.
	mapFault func(task, attempt int) bool
	// onWelcome is called once the coordinator assigns this worker's id
	// (loopback uses it to wire the kill hook).
	onWelcome func(w *worker)
	// localSpans additionally copies this worker's trace spans into its own
	// telemetry bundle after the job (multi-process Join, where the local
	// process wants its own view). Loopback leaves it off: there the
	// coordinator's merged, clock-aligned trace is the only copy, so spans
	// are never duplicated into the shared buffer.
	localSpans bool
}

// pendingDone tracks the commit barrier of one finished map attempt: the
// peers whose acks are still outstanding, and the attempt's stats to flush
// when the last ack lands.
type pendingDone struct {
	acks  map[int]bool
	stats attemptStats
}

// peerMeshTimeout bounds how long a worker waits for the peer mesh to form
// (or for a handoff destination to become dialable) before giving up.
const peerMeshTimeout = 60 * time.Second

// worker is one node of the distributed runtime.
type worker struct {
	cfg workerConfig
	tun Tuning
	led *ledger
	tr  *tracer

	id      int
	job     Job
	traceID uint64
	app     *core.App
	prt     func(key []byte, n int) int
	live    bool   // joined a job already underway
	lnAddr  string // our peer-facing listen address

	// conn callbacks shared by dialed and accepted peer links.
	onDrop       func(records, acct int64)
	onBulkWrite  func(f *frame) func()
	onBulkTiming func(queueNs, writeNs int64)

	execCh chan execItem
	stop   chan struct{}
	wg     sync.WaitGroup

	mu        sync.Mutex
	n         int          // cluster width; grows as workers join
	coord     *conn        // replaced by the rejoin path after a coordinator restart
	peers     []*conn      // index by worker id; nil at own slot or unconnected
	coal      []*coalescer // per-peer outbound run coalescers, parallel to peers
	peerAddrs []string     // "" = departed or never announced
	store     *shuffleStore
	epoch     int
	homes     []int
	alive     []bool
	settled   []bool // partitions with a settled final output: stage nothing for them
	killed    bool
	draining  bool
	drained   bool
	ackWait   map[attemptKey]*pendingDone

	// Scratch-disk state (block-store replicas + spill files). wdMu and bsMu
	// are leaf locks — never taken while holding them; fetchMu guards the
	// in-flight remote block reads (blockio.go).
	wdMu    sync.Mutex
	workdir string
	wdErr   error
	bsMu    sync.Mutex
	bstore  *blockstore.Store

	fetchMu  sync.Mutex
	fetchCtr uint64
	fetches  map[uint64]*blockFetchWait
}

type execItem struct {
	reduce  bool
	mapTask mapTaskMsg
	redTask reduceTaskMsg
}

// runWorker joins the coordinator at cfg.coordAddr, executes one job, and
// returns whether the worker was killed mid-job (loopback fault cells) and
// any unexpected error.
func runWorker(cfg workerConfig) (killed bool, err error) {
	tun := cfg.tun.withDefaults()
	led := cfg.led
	ownLed := led == nil
	if ownLed {
		led = newLedger(nil)
	}
	w := &worker{
		cfg:     cfg,
		tun:     tun,
		led:     led,
		execCh:  make(chan execItem, 4096),
		stop:    make(chan struct{}),
		store:   newShuffleStore(),
		ackWait: make(map[attemptKey]*pendingDone),
		fetches: make(map[uint64]*blockFetchWait),
	}
	w.onDrop = func(records, acct int64) { w.led.netLost(records, acct) }
	// net/send spans are recorded on the pump goroutine, where the socket
	// write actually happens — that is the wall-clock interval that
	// overlaps the executor's map/kernel spans in the trace. The span id
	// was minted by the coalescer (it rides inside the frame payload, so
	// the receiver can parent on it); the parent is the map kernel that
	// first contributed to the batch.
	w.onBulkWrite = func(f *frame) func() { return w.tr.spanWithID(f.spanID, stageNetSend, f.spanParent) }
	w.onBulkTiming = led.bulkTiming

	ln, err := net.Listen("tcp", cfg.listenAddr)
	if err != nil {
		return false, fmt.Errorf("dist: worker listen: %w", err)
	}
	defer ln.Close()
	w.lnAddr = ln.Addr().String()

	// The rejoin grace also covers the FIRST dial: a coordinator ingesting a
	// large input file opens its listener only after the read, so a worker
	// launched alongside it would otherwise die on connection-refused.
	c, err := net.Dial("tcp", cfg.coordAddr)
	for deadline := time.Now().Add(tun.RejoinGrace); err != nil && time.Now().Before(deadline); {
		time.Sleep(200 * time.Millisecond)
		c, err = net.Dial("tcp", cfg.coordAddr)
	}
	if err != nil {
		return false, fmt.Errorf("dist: dialing coordinator: %w", err)
	}
	w.coord = newConn(c, "coord", tun, nil)
	defer func() { w.coordConn().close() }()

	w.coord.send(frame{typ: mJoin, payload: helloMsg{ListenAddr: w.lnAddr}.encode()})

	if err := w.join(); err != nil {
		return false, err
	}
	if tun.SpillThreshold > 0 {
		// Armed only now: the tracer the spill spans book into is minted
		// during join, and nothing commits to the store before job start.
		w.store.enableSpill(tun.SpillThreshold, w.workDir, led, w.tr)
	}
	if cfg.onWelcome != nil {
		cfg.onWelcome(w)
	}
	if err := w.setupPeers(ln); err != nil {
		return false, err
	}
	if w.live {
		// Mesh is up: tell the coordinator we are ready to own partitions.
		w.coord.send(frame{typ: mJoinReady})
	}

	w.wg.Add(1)
	go w.executor()
	w.wg.Add(1)
	go w.coalesceFlusher()

	err = w.coordLoop()

	close(w.stop)
	w.mu.Lock()
	wasKilled := w.killed
	cc := w.coord
	peers := append([]*conn(nil), w.peers...)
	w.mu.Unlock()
	if err == nil && !wasKilled {
		// Ship this node's trace spans before closing the coordinator link.
		// The FIFO connection guarantees the batch precedes our EOF, so the
		// coordinator always has it by the time its reader drains. A killed
		// or failed worker sends nothing — its partial timeline died with it.
		cc.send(frame{typ: mSpanBatch, payload: spanBatchMsg{
			TraceID:       w.traceID,
			Node:          w.id,
			EpochUnixNano: w.tr.epoch.UnixNano(),
			Spans:         w.tr.spans(),
		}.encode()})
		cc.flush()
	}
	cc.close()
	for _, pc := range peers {
		if pc == nil {
			continue
		}
		if wasKilled {
			pc.seal() // already sealed by kill; idempotent
		} else {
			pc.shutdown()
		}
	}
	ln.Close() // unblock the peer acceptor
	w.wg.Wait()
	w.mu.Lock()
	peers = append(peers[:0], w.peers...)
	w.mu.Unlock()
	for _, pc := range peers {
		if pc != nil {
			pc.close()
		}
	}
	if w.workdir != "" {
		// Every goroutine has joined: nothing still reads replicas or spill
		// files. Block replicas are job-scoped (the coordinator re-ingests on
		// resume), so the scratch dir goes with the worker.
		os.RemoveAll(w.workdir)
	}
	if ownLed {
		led.publish()
	}
	if cfg.localSpans && led.tel != nil && led.tel.Spans != nil {
		for _, s := range w.tr.spans() {
			led.tel.Spans.Span(s)
		}
	}
	if wasKilled {
		return true, nil
	}
	return false, err
}

// coordConn snapshots the current coordinator link (the rejoin path swaps
// it after a coordinator restart).
func (w *worker) coordConn() *conn {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.coord
}

// coordSend sends one frame on whatever coordinator link is current.
func (w *worker) coordSend(f frame) {
	w.coordConn().send(f)
}

// join completes the hello/welcome/job-start handshake.
func (w *worker) join() error {
	typ, p, err := w.coord.recv()
	if err != nil {
		return fmt.Errorf("dist: awaiting welcome: %w", err)
	}
	if typ != mWelcome {
		return fmt.Errorf("dist: expected welcome, got %s", typeName(typ))
	}
	wel, err := decodeWelcome(p)
	if err != nil {
		return err
	}
	w.id, w.n = wel.WorkerID, wel.Workers
	w.tr = newTracer(w.led, w.id)

	typ, p, err = w.coord.recv()
	if err != nil {
		return fmt.Errorf("dist: awaiting job start: %w", err)
	}
	if typ != mJobStart {
		return fmt.Errorf("dist: expected job-start, got %s", typeName(typ))
	}
	js, err := decodeJobStart(p)
	if err != nil {
		return err
	}
	w.job = js.Job.withDefaults()
	w.traceID = js.TraceID
	w.homes = js.Homes
	w.epoch = js.Epoch
	w.live = js.Live
	w.store.setEpoch(js.Epoch)
	w.alive = make([]bool, w.n)
	for i := range w.alive {
		w.alive[i] = i == w.id || (i < len(js.Peers) && js.Peers[i] != "")
	}
	w.peerAddrs = js.Peers

	app, prt, err := w.cfg.resolve(w.job.App)
	if err != nil {
		return fmt.Errorf("dist: resolving app %q: %w", w.job.App.Name, err)
	}
	if prt == nil {
		prt = kv.Partition
	}
	w.app, w.prt = app, prt
	return nil
}

// setupPeers establishes the worker mesh: this worker dials every live peer
// with a lower id and accepts connections from peers with higher ids
// through a persistent acceptor, which also admits workers that join the
// cluster later. A live joiner is the highest id, so it dials everyone.
func (w *worker) setupPeers(ln net.Listener) error {
	w.mu.Lock()
	w.peers = make([]*conn, w.n)
	w.coal = make([]*coalescer, w.n)
	want := 0
	for i := 0; i < w.n; i++ {
		if i != w.id && w.alive[i] {
			want++
		}
	}
	w.mu.Unlock()

	w.wg.Add(1)
	go w.peerAcceptor(ln)

	for j := 0; j < w.id; j++ {
		w.mu.Lock()
		addr := ""
		if j < len(w.peerAddrs) {
			addr = w.peerAddrs[j]
		}
		w.mu.Unlock()
		if addr == "" {
			continue // departed before we arrived
		}
		var c net.Conn
		var err error
		for try := 0; try < 50; try++ {
			c, err = net.Dial("tcp", addr)
			if err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			// The peer's listener is gone: it died (or was killed) while we
			// were meshing. Skip it — the coordinator's death broadcast will
			// mark it dead and prune any barrier that still counts it, and
			// death re-execution recovers whatever its store held.
			want--
			continue
		}
		cc := newConn(c, fmt.Sprintf("peer%d", j), w.tun, w.onDrop)
		cc.onBulkWrite = w.onBulkWrite
		cc.onBulkTiming = w.onBulkTiming
		cc.send(frame{typ: mPeerHello, payload: peerHelloMsg{WorkerID: w.id}.encode()})
		if !w.registerPeer(j, cc) {
			cc.close()
			return fmt.Errorf("dist: duplicate peer %d", j)
		}
	}

	// Wait for the higher-id live peers to dial in.
	deadline := time.Now().Add(peerMeshTimeout)
	for {
		w.mu.Lock()
		got := 0
		for j, pc := range w.peers {
			if j != w.id && pc != nil {
				got++
			}
		}
		w.mu.Unlock()
		if got >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dist: peer mesh incomplete: %d/%d connected", got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// peerAcceptor admits peer connections for the life of the job — the
// formation mesh's higher-id dialers first, later any worker that joins the
// cluster mid-job. It exits when the listener closes.
func (w *worker) peerAcceptor(ln net.Listener) {
	defer w.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		w.wg.Add(1)
		go func(c net.Conn) {
			defer w.wg.Done()
			cc := newConn(c, "peer?", w.tun, w.onDrop)
			cc.onBulkWrite = w.onBulkWrite
			cc.onBulkTiming = w.onBulkTiming
			typ, p, err := cc.recv()
			if err != nil || typ != mPeerHello {
				cc.close()
				return
			}
			ph, err := decodePeerHello(p)
			if err != nil || !w.registerPeer(ph.WorkerID, cc) {
				cc.close()
			}
		}(c)
	}
}

// registerPeer installs one peer link (growing the mesh arrays for a
// joiner), creates its coalescer, and starts its reader. Returns false on
// invalid or duplicate ids.
func (w *worker) registerPeer(id int, cc *conn) bool {
	w.mu.Lock()
	if id < 0 || id == w.id {
		w.mu.Unlock()
		return false
	}
	w.growLocked(id + 1)
	if w.peers[id] != nil {
		w.mu.Unlock()
		return false
	}
	w.peers[id] = cc
	w.coal[id] = newCoalescer(cc, w.led, w.tr, w.traceID, w.tun.CoalesceBytes, w.job.Compress)
	w.alive[id] = true
	w.mu.Unlock()
	w.wg.Add(1)
	go w.peerReader(id, cc)
	return true
}

// growLocked widens the per-worker arrays to hold n slots. Caller holds w.mu.
func (w *worker) growLocked(n int) {
	if n <= w.n {
		return
	}
	peers := make([]*conn, n)
	copy(peers, w.peers)
	w.peers = peers
	coal := make([]*coalescer, n)
	copy(coal, w.coal)
	w.coal = coal
	alive := make([]bool, n)
	copy(alive, w.alive)
	w.alive = alive
	addrs := make([]string, n)
	copy(addrs, w.peerAddrs)
	w.peerAddrs = addrs
	w.n = n
}

// coalesceFlusher is the coalescers' time trigger: a buffered run batch
// whose oldest entry has waited CoalesceDelay ships even if no size or
// marker trigger arrives — bounded latency without sacrificing batching.
func (w *worker) coalesceFlusher() {
	defer w.wg.Done()
	t := time.NewTicker(w.tun.CoalesceDelay)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			coal := append([]*coalescer(nil), w.coal...)
			w.mu.Unlock()
			for _, co := range coal {
				if co != nil {
					co.flushIfStale(w.tun.CoalesceDelay)
				}
			}
		}
	}
}

// coordLoop dispatches coordinator frames until job end, drain completion,
// death of the coordinator, or our own (expected) kill. With RejoinGrace
// set, a lost coordinator link triggers redial-and-rejoin — the path a
// restarted, journal-resumed coordinator picks its workers back up by.
func (w *worker) coordLoop() error {
	var rejoinUntil time.Time
	for {
		cc := w.coordConn()
		typ, p, err := cc.recv()
		if err != nil {
			w.mu.Lock()
			killed, drained := w.killed, w.drained
			w.mu.Unlock()
			if killed || drained {
				return nil
			}
			if w.tun.RejoinGrace > 0 {
				if rejoinUntil.IsZero() {
					rejoinUntil = time.Now().Add(w.tun.RejoinGrace)
				}
				if w.redialCoord(rejoinUntil) {
					continue
				}
			}
			return fmt.Errorf("dist: lost coordinator: %w", err)
		}
		rejoinUntil = time.Time{}
		switch typ {
		case mBlockPut:
			// Ingest precedes every map task on the FIFO link, so a Ref task
			// never races its own replica.
			if err := w.onBlockPut(p); err != nil {
				return err
			}
		case mMapTask:
			m, err := decodeMapTask(p)
			if err != nil {
				return err
			}
			w.execCh <- execItem{mapTask: m}
		case mReduceTask:
			m, err := decodeReduceTask(p)
			if err != nil {
				return err
			}
			w.execCh <- execItem{reduce: true, redTask: m}
		case mWorkerDead:
			m, err := decodeWorkerDead(p)
			if err != nil {
				return err
			}
			w.handleDeath(m)
		case mRehome:
			m, err := decodeRehome(p)
			if err != nil {
				return err
			}
			w.handleRehome(m)
		case mDrain:
			w.mu.Lock()
			w.draining = true
			coal := append([]*coalescer(nil), w.coal...)
			w.mu.Unlock()
			for _, co := range coal {
				if co != nil {
					co.flush()
				}
			}
		case mDrained:
			w.mu.Lock()
			w.drained = true
			w.mu.Unlock()
			return nil
		case mJobEnd:
			return nil
		default:
			return fmt.Errorf("dist: unexpected %s from coordinator", typeName(typ))
		}
	}
}

// redialCoord tries to re-attach to a restarted coordinator until the
// deadline: dial, announce ourselves with a rejoin, and swap the link in.
// The resumed coordinator's first frame (a rehome refresh, or a drained
// notice if the journal says we already left) flows through coordLoop's
// normal dispatch.
func (w *worker) redialCoord(deadline time.Time) bool {
	for time.Now().Before(deadline) {
		w.mu.Lock()
		killed := w.killed
		epoch := w.epoch
		w.mu.Unlock()
		if killed {
			return false
		}
		c, err := net.Dial("tcp", w.cfg.coordAddr)
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		cc := newConn(c, "coord", w.tun, nil)
		cc.send(frame{typ: mRejoin, payload: rejoinMsg{
			WorkerID: w.id, ListenAddr: w.lnAddr, Epoch: epoch,
		}.encode()})
		w.mu.Lock()
		old := w.coord
		w.coord = cc
		w.mu.Unlock()
		old.close()
		return true
	}
	return false
}

// executor runs map and reduce tasks serially; shuffle sends are
// asynchronous (the connection write pumps own the sockets), so task k's
// network transfer overlaps task k+1's kernel — the paper's stage-4
// compute/communication overlap.
func (w *worker) executor() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		case it := <-w.execCh:
			if it.reduce {
				w.runReduce(it.redTask)
			} else {
				w.runMap(it.mapTask)
			}
		}
	}
}

// execMapKernel runs the map kernel over one block through the configured
// collector: the hash table groups values per key (enabling the combiner),
// the buffer pool appends pairs directly. Either way the emitted multiset
// is identical (the combiner is the only semantic difference), matching
// the native pipeline's collector behavior.
func execMapKernel(app *core.App, job Job, recs []kv.Pair) []kv.Pair {
	var out []kv.Pair
	emitCopy := func(k, v []byte) {
		out = append(out, kv.Pair{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
	}
	// With a batch kernel, run it once over the whole block and replay its
	// output into the collector: the emit sequence matches the per-record
	// path by construction, without paying the per-record shim's Batch setup
	// for every record.
	feed := func(emit func(k, v []byte)) {
		for _, rec := range recs {
			app.Map(rec, emit)
		}
	}
	if app.MapBatch != nil {
		var b kv.Batch
		app.MapBatch(recs, &b)
		feed = func(emit func(k, v []byte)) {
			for i := 0; i < b.Len(); i++ {
				p := b.Pair(i)
				emit(p.Key, p.Value)
			}
		}
	}
	if job.Collector == core.HashTable {
		idx := make(map[string]int)
		var keys [][]byte
		var vals [][][]byte
		emit := func(k, v []byte) {
			i, ok := idx[string(k)]
			if !ok {
				i = len(keys)
				idx[string(k)] = i
				keys = append(keys, append([]byte(nil), k...))
				vals = append(vals, nil)
			}
			vals[i] = append(vals[i], append([]byte(nil), v...))
		}
		feed(emit)
		if job.UseCombiner && app.Combine != nil {
			for i := range keys {
				app.Combine(keys[i], vals[i], emitCopy)
			}
		} else {
			for i := range keys {
				for _, v := range vals[i] {
					out = append(out, kv.Pair{Key: keys[i], Value: v})
				}
			}
		}
		return out
	}
	feed(emitCopy)
	return out
}

// runMap executes one map attempt: kernel, partition, push runs to their
// home workers, then mark every live peer. The attempt reports done to the
// coordinator only when every live peer has acked its marker — at which
// point its output is committed everywhere it needs to be.
//
// Runs are always built uncompressed here: wire compression is applied once
// per coalesced frame by the coalescer, and the local store holds runs the
// reducer can decode without an inflate pass.
func (w *worker) runMap(m mapTaskMsg) {
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()

	// Batch kernels skip the per-record emit path: pairs land in a columnar
	// batch whose index entries are scattered and sorted without moving
	// payload, mirroring internal/native's fast path. The combiner needs
	// per-key grouping, so combiner jobs stay on the per-record collector.
	useBatch := w.app.MapBatch != nil && !w.job.UseCombiner

	// Resolve the task's input first: embedded bytes for classic jobs, the
	// block store (own disk, or streamed from a holder) for Ref tasks. The
	// acquisition gets its own map/input span tagged with where the bytes
	// came from — the per-split locality evidence in the merged trace.
	t0 := time.Now()
	block, locality, err := w.acquireBlock(m)
	if err != nil {
		w.coordSend(frame{typ: mMapFailed, payload: taskFailMsg{
			Task: m.Task, Attempt: m.Attempt, Reason: err.Error(),
		}.encode()})
		return
	}
	if locality != "" {
		w.tr.recordTagged(stageMapInput, t0, time.Now(), m.SpanID, map[string]string{
			"locality": locality,
			"block":    fmt.Sprintf("%d", m.Task),
		})
	}

	// The kernel span parents on the coordinator's sched/assign span for
	// this attempt; everything downstream (partitioning, the shuffle sends)
	// parents on the kernel, forming the causal chain the merged trace
	// draws as flow arrows.
	kernelID, end := w.tr.span(stageMapKernel, m.SpanID)
	recs := w.app.Parse(block)
	var batch kv.Batch
	var pairs []kv.Pair
	if useBatch {
		w.app.MapBatch(recs, &batch)
	} else {
		pairs = execMapKernel(w.app, w.job, recs)
	}
	end()

	if w.cfg.mapFault != nil && w.cfg.mapFault(m.Task, m.Attempt) {
		// Fail before partitioning: like the sim core, a failed attempt has
		// produced nothing durable and nothing has touched the wire.
		w.coordSend(frame{typ: mMapFailed, payload: taskFailMsg{
			Task: m.Task, Attempt: m.Attempt, Reason: "injected fault",
		}.encode()})
		return
	}

	P := w.job.Partitions
	_, end = w.tr.span(stageMapPartition, kernelID)
	runs := make([]*kv.Run, P)
	stats := attemptStats{RecordsIn: int64(len(recs))}
	if useBatch {
		stats.PairsOut = int64(batch.Len())
		bounds := batch.PartitionRanges(w.prt, P)
		for p := 0; p < P; p++ {
			lo, hi := bounds[p], bounds[p+1]
			if lo == hi {
				continue
			}
			batch.SortRange(lo, hi)
			runs[p] = batch.RunRange(lo, hi, false)
		}
	} else {
		stats.PairsOut = int64(len(pairs))
		buckets := make([][]kv.Pair, P)
		for _, pr := range pairs {
			p := w.prt(pr.Key, P)
			buckets[p] = append(buckets[p], pr)
		}
		for p, b := range buckets {
			if len(b) == 0 {
				continue
			}
			kv.SortPairs(b)
			runs[p] = kv.NewRun(b, false)
		}
	}
	for _, r := range runs {
		if r == nil {
			continue
		}
		stats.PartRecords += int64(r.Records)
		stats.PartRuns++
		stats.PartRaw += r.RawBytes
		stats.PartStored += r.StoredBytes()
	}
	end()

	// Register the ack barrier and commit our own partitions under one
	// lock, against a consistent homes/alive/epoch snapshot: a death or
	// membership transition processed before this point is reflected in the
	// snapshot; one processed after will prune the barrier (death) or fence
	// the staged runs out at commit time (epoch).
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	epoch := w.epoch
	homes := append([]int(nil), w.homes...)
	settled := append([]bool(nil), w.settled...)
	isSettled := func(p int) bool { return p < len(settled) && settled[p] }
	var livePeers []int
	for j := 0; j < w.n; j++ {
		if j != w.id && w.alive[j] {
			livePeers = append(livePeers, j)
		}
	}
	coal := append([]*coalescer(nil), w.coal...)
	peers := append([]*conn(nil), w.peers...)
	for p, r := range runs {
		if r != nil && homes[p] == w.id && !isSettled(p) {
			w.store.stage(m.Task, m.Attempt, p, r, epoch)
		}
	}
	acc, dup := w.store.commit(m.Task, m.Attempt)
	w.led.storeAccepted.Add(acc)
	w.led.storeDupDropped.Add(dup)
	var pd *pendingDone
	if len(livePeers) > 0 {
		pd = &pendingDone{acks: make(map[int]bool, len(livePeers)), stats: stats}
		for _, j := range livePeers {
			pd.acks[j] = true
		}
		w.ackWait[attemptKey{m.Task, m.Attempt}] = pd
	}
	w.mu.Unlock()

	// Push remote partitions through the per-peer coalescers. The send
	// window may block here — that is the backpressure path — but the
	// frames stream out through the pumps while this executor moves on to
	// the next task. Each peer's coalescer flushes before its mark goes
	// out, so on the FIFO connection every run still precedes its marker.
	for p := 0; p < P; p++ {
		r := runs[p]
		if r == nil || homes[p] == w.id || isSettled(p) {
			continue
		}
		if co := coal[homes[p]]; co != nil {
			co.add(m.Task, m.Attempt, p, r, kernelID, epoch)
		}
	}
	mark := markMsg{Task: m.Task, Attempt: m.Attempt}.encode()
	for _, j := range livePeers {
		if coal[j] != nil {
			coal[j].flush()
		}
		if peers[j] != nil {
			peers[j].send(frame{typ: mMark, payload: mark})
		}
	}
	if pd == nil {
		// Single-node cluster (or every peer dead): no barrier to wait on.
		w.led.flushAttempt(stats)
		w.coordSend(frame{typ: mMapDone, payload: mapDoneMsg{Task: m.Task, Attempt: m.Attempt, Stats: stats}.encode()})
	}
}

// runReduce merges one home partition's committed runs and applies the
// reduce kernel (or drains merged pairs for reduce-less apps), reporting
// the partition's output to the coordinator. The reduce-side conservation
// counters are booked by the coordinator at acceptance, not here: under
// kills and coordinator restarts a partition can be recomputed, and only
// the first accepted report may count.
func (w *worker) runReduce(rt reduceTaskMsg) {
	_, end := w.tr.span(stageReduce, rt.SpanID)
	// Iterators are built under the lock (the committed-run list must not
	// grow mid-snapshot) but drained outside it: resident runs are immutable
	// once committed, and a concurrent spill of this partition only drops the
	// store's reference — the blob an iterator already holds stays valid.
	w.mu.Lock()
	iters, recordsIn, closeSpills, spillErr := w.store.partitionIters(rt.Partition)
	w.mu.Unlock()
	defer closeSpills()
	merged := kv.Merge(iters...)
	var out []kv.Pair
	var groups int64
	if w.app.Reduce != nil {
		emit := func(k, v []byte) {
			out = append(out, kv.Pair{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
		}
		gi := kv.NewGroupIter(merged)
		for {
			g, ok := gi.Next()
			if !ok {
				break
			}
			groups++
			w.app.Reduce(g.Key, g.Values, emit)
		}
	} else {
		out = kv.Drain(merged)
	}
	end()

	if err := spillErr(); err != nil {
		// A spilled run failed to stream back: this partition's merge is
		// incomplete, so fail the attempt instead of reporting short output.
		w.coordSend(frame{typ: mReduceFailed, payload: taskFailMsg{
			Task: rt.Partition, Attempt: rt.Attempt, Reason: err.Error(),
		}.encode()})
		return
	}

	w.coordSend(frame{typ: mReduceDone, payload: reduceDoneMsg{
		Partition: rt.Partition, Attempt: rt.Attempt,
		RecordsIn: recordsIn, GroupsIn: groups, Output: kv.Marshal(out),
	}.encode()})
}

// peerReader owns the inbound side of one peer link.
func (w *worker) peerReader(j int, cc *conn) {
	defer w.wg.Done()
	for {
		typ, p, err := cc.recv()
		if err != nil {
			cc.close()
			// Fetches waiting on this peer's chunks fail over now rather
			// than waiting out their timeout.
			w.failFetches(j)
			return
		}
		switch typ {
		case mRunBatch:
			w.onRunBatch(p)
		case mMark:
			w.onMark(cc, p)
		case mAck:
			w.onAck(j, p)
		case mHandoff:
			w.onHandoffBatch(p)
		case mHandoffMark:
			w.onHandoffMark(p)
		case mBlockFetch:
			w.onBlockFetch(cc, p)
		case mBlockChunk:
			w.onBlockChunk(p)
		}
	}
}

// onRunBatch stages every run in one coalesced shuffle frame — or, on a
// killed worker, drains the whole frame as lost so the wire ledger still
// balances. Wire accounting is at frame granularity: the payload byte count
// here mirrors exactly what the sender counted at flush.
//
// Staged runs are kv views aliasing the frame's receive buffer — the
// zero-copy path: readFrame allocates a fresh buffer per frame and nothing
// reuses it, so the views stay valid for the life of the shuffle store. (A
// pooled receive buffer would need Retain before staging.)
func (w *worker) onRunBatch(p []byte) {
	t0 := time.Now()
	var parent uint64
	// The staging span parents on the sender's net/send span id carried in
	// the frame payload — the cross-process edge of the trace (parent stays
	// 0 when decode fails; the span still books the busy time).
	defer func() { w.tr.record(stageNetRecv, t0, time.Now(), parent) }()
	msg, err := decodeRunBatch(p)
	if err != nil {
		return
	}
	parent = msg.SendSpan
	var records int64
	for _, re := range msg.Entries {
		records += int64(re.Records)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		w.led.netLost(records, int64(len(p)))
		return
	}
	w.led.netRecv(records, int64(len(p)))
	for _, re := range msg.Entries {
		run := kv.NewRunView(re.Blob, re.Records, re.RawBytes, false)
		w.store.stage(re.Task, re.Attempt, re.Partition, run, re.Epoch)
	}
}

// onMark commits an attempt's staged runs and acks the sender. A killed
// worker neither commits nor acks — the sender's barrier is released by
// the coordinator's death notice instead.
func (w *worker) onMark(cc *conn, p []byte) {
	msg, err := decodeMark(p)
	if err != nil {
		return
	}
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	acc, dup := w.store.commit(msg.Task, msg.Attempt)
	w.led.storeAccepted.Add(acc)
	w.led.storeDupDropped.Add(dup)
	w.mu.Unlock()
	cc.send(frame{typ: mAck, payload: p})
}

// onHandoffBatch stages part of a re-homed partition arriving from its old
// home. A killed destination drains the frame as net-lost, like any bulk
// frame.
func (w *worker) onHandoffBatch(p []byte) {
	msg, err := decodeHandoffBatch(p)
	if err != nil {
		return
	}
	var records int64
	for _, he := range msg.Entries {
		records += int64(he.Records)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		w.led.netLost(records, int64(len(p)))
		return
	}
	w.led.netRecv(records, int64(len(p)))
	for _, he := range msg.Entries {
		run := kv.NewRunView(he.Blob, he.Records, he.RawBytes, false)
		w.store.stageHandoff(msg.Partition, msg.Epoch, he.Task, run)
	}
}

// onHandoffMark adopts one partition's completed handoff and reports it to
// the coordinator, which is counting adopted partitions to complete the
// membership transition.
func (w *worker) onHandoffMark(p []byte) {
	msg, err := decodeHandoffMark(p)
	if err != nil {
		return
	}
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	adopted, dup := w.store.adoptHandoff(msg.Partition, msg.Epoch)
	w.led.handoffIn.Add(adopted)
	w.led.storeDupDropped.Add(dup)
	w.mu.Unlock()
	w.coordSend(frame{typ: mHandoffDone, payload: handoffDoneMsg{
		Epoch: msg.Epoch, Partition: msg.Partition,
	}.encode()})
}

// onAck releases one peer from an attempt's commit barrier; the last ack
// flushes the attempt's stats and reports map-done.
func (w *worker) onAck(j int, p []byte) {
	msg, err := decodeMark(p)
	if err != nil {
		return
	}
	k := attemptKey{msg.Task, msg.Attempt}
	var done *pendingDone
	w.mu.Lock()
	if pd := w.ackWait[k]; pd != nil {
		delete(pd.acks, j)
		if len(pd.acks) == 0 {
			delete(w.ackWait, k)
			done = pd
		}
	}
	w.mu.Unlock()
	if done != nil {
		w.led.flushAttempt(done.stats)
		w.coordSend(frame{typ: mMapDone, payload: mapDoneMsg{Task: k.task, Attempt: k.attempt, Stats: done.stats}.encode()})
	}
}

// handleRehome applies a membership transition: adopt the new epoch, homes
// and liveness map, then hand any partition that moved away from this node
// to its new home. Newly-dead peers (a death the coordinator journaled but
// could not broadcast before restarting) are sealed like a death notice;
// the drained worker named in Left is not sealed — its link must stay open
// to carry the handoff it is about to send.
func (w *worker) handleRehome(m rehomeMsg) {
	type flushed struct {
		k  attemptKey
		pd *pendingDone
	}
	var done []flushed
	type move struct{ part, dest int }
	var moves []move
	var sealIDs []int
	w.mu.Lock()
	if m.Epoch < w.epoch || len(m.Homes) != len(w.homes) {
		w.mu.Unlock()
		return
	}
	if m.Joined >= 0 {
		w.growLocked(m.Joined + 1)
		if m.JoinedAddr != "" {
			w.peerAddrs[m.Joined] = m.JoinedAddr
		}
	}
	for i := 0; i < w.n && i < len(m.Alive); i++ {
		if i == w.id {
			continue
		}
		if m.Alive[i] && !w.alive[i] && w.peers[i] != nil {
			w.alive[i] = true
		}
		if !m.Alive[i] && w.alive[i] {
			w.alive[i] = false
			if i != m.Left {
				sealIDs = append(sealIDs, i)
			}
			for k, pd := range w.ackWait {
				if pd.acks[i] {
					delete(pd.acks, i)
					if len(pd.acks) == 0 {
						delete(w.ackWait, k)
						done = append(done, flushed{k, pd})
					}
				}
			}
		}
	}
	if m.Joined >= 0 && m.Joined != w.id {
		w.alive[m.Joined] = true
	}
	prev := w.homes
	w.homes = append([]int(nil), m.Homes...)
	w.epoch = m.Epoch
	w.store.setEpoch(m.Epoch)
	for p := range m.Homes {
		if prev[p] == w.id && m.Homes[p] != w.id {
			moves = append(moves, move{p, m.Homes[p]})
		}
	}
	w.mu.Unlock()
	for _, i := range sealIDs {
		w.mu.Lock()
		pc, co := w.peers[i], w.coal[i]
		w.mu.Unlock()
		if pc != nil {
			pc.seal()
		}
		if co != nil {
			co.close()
		}
	}
	for _, d := range done {
		w.led.flushAttempt(d.pd.stats)
		w.coordSend(frame{typ: mMapDone, payload: mapDoneMsg{Task: d.k.task, Attempt: d.k.attempt, Stats: d.pd.stats}.encode()})
	}
	if len(moves) == 0 {
		return
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for _, mv := range moves {
			w.sendHandoff(mv.part, mv.dest, m.Epoch)
		}
	}()
}

// sendHandoff ships one re-homed partition's committed runs to its new
// home: bulk handoff frames sized like coalesced batches, then the handoff
// mark that tells the destination to adopt. The destination may be a joiner
// whose link is still being established, so wait for it briefly.
func (w *worker) sendHandoff(part, dest, epoch int) {
	var pc *conn
	deadline := time.Now().Add(peerMeshTimeout)
	for {
		w.mu.Lock()
		if dest < w.n {
			pc = w.peers[dest]
		}
		killed := w.killed
		w.mu.Unlock()
		if pc != nil || killed || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if pc == nil {
		return
	}
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	runs, records := w.store.takePartition(part)
	w.led.handoffOut.Add(records)
	w.mu.Unlock()

	msg := handoffBatchMsg{Epoch: epoch, Partition: part}
	var bodyBytes int64
	var recs int64
	flush := func() {
		payload := msg.encode()
		w.led.netSent(recs, int64(len(payload)))
		w.led.frameBytes(5 + int64(len(payload)))
		pc.send(frame{typ: mHandoff, payload: payload, bulk: true, records: recs, acct: int64(len(payload))})
		msg.Entries, bodyBytes, recs = nil, 0, 0
	}
	for _, cr := range runs {
		run, err := cr.load() // spilled runs rematerialize for the wire
		if err != nil {
			// The spill file is unreadable: its records are lost to the
			// handoff, exactly like a disk dying under a classic worker.
			// Re-book them as lost so the handoff ledger still balances.
			w.led.handoffOut.Add(-int64(cr.records))
			w.led.storeLost.Add(int64(cr.records))
			continue
		}
		blob := run.Blob()
		msg.Entries = append(msg.Entries, handoffEntry{
			Task: cr.task, Records: run.Records, RawBytes: run.RawBytes, Blob: blob,
		})
		bodyBytes += int64(len(blob))
		recs += int64(run.Records)
		if bodyBytes >= w.tun.CoalesceBytes {
			flush()
		}
		if cr.file != "" {
			os.Remove(cr.file) // the partition left this node; scratch goes too
		}
	}
	if len(msg.Entries) > 0 {
		flush()
	}
	pc.send(frame{typ: mHandoffMark, payload: handoffMarkMsg{
		Epoch: epoch, Partition: part, Runs: len(runs), Records: records,
	}.encode()})
}

// handleDeath applies a coordinator death notice: mark the peer dead,
// adopt the re-homed partition map and epoch, release the dead peer from
// every commit barrier, and seal our link to it (queued frames are
// accounted lost; already-delivered bytes will still be drained by the
// dying peer).
func (w *worker) handleDeath(m workerDeadMsg) {
	type flushed struct {
		k  attemptKey
		pd *pendingDone
	}
	var done []flushed
	w.mu.Lock()
	if m.Dead >= 0 && m.Dead < w.n {
		w.alive[m.Dead] = false
	}
	if len(m.Homes) == len(w.homes) {
		w.homes = m.Homes
	}
	if len(m.Settled) == len(w.homes) {
		// Partitions whose accepted output settled must never be re-staged:
		// death re-execution recovers the live partitions, and a settled
		// partition's fresh (empty-handed) home would book re-shipped runs
		// as newly accepted records nothing will ever read.
		w.settled = m.Settled
	}
	if m.Epoch > w.epoch {
		w.epoch = m.Epoch
		w.store.setEpoch(m.Epoch)
	}
	for k, pd := range w.ackWait {
		if pd.acks[m.Dead] {
			delete(pd.acks, m.Dead)
			if len(pd.acks) == 0 {
				delete(w.ackWait, k)
				done = append(done, flushed{k, pd})
			}
		}
	}
	var pc *conn
	var co *coalescer
	if m.Dead >= 0 && m.Dead < len(w.peers) {
		pc, co = w.peers[m.Dead], w.coal[m.Dead]
	}
	w.mu.Unlock()
	if pc != nil {
		pc.seal()
	}
	if co != nil {
		// Runs buffered for the dead peer were never counted sent; discard
		// them so a later flush cannot ship data nobody will commit.
		co.close()
	}
	for _, d := range done {
		w.led.flushAttempt(d.pd.stats)
		w.coordSend(frame{typ: mMapDone, payload: mapDoneMsg{Task: d.k.task, Attempt: d.k.attempt, Stats: d.pd.stats}.encode()})
	}
}

// kill simulates this worker dying mid-job (loopback fault cells): the
// store's committed records are written off as lost, outbound pumps seal
// (queued frames become net-lost), inbound links switch to drain
// accounting, and the coordinator link drops — which is how the
// coordinator finds out.
func (w *worker) kill() {
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	w.killed = true
	lost := w.store.lostAll()
	w.led.storeLost.Add(lost)
	w.ackWait = make(map[attemptKey]*pendingDone)
	peers := append([]*conn(nil), w.peers...)
	coal := append([]*coalescer(nil), w.coal...)
	cc := w.coord
	w.mu.Unlock()
	for _, pc := range peers {
		if pc != nil {
			pc.seal()
		}
	}
	// Seal before closing coalescers: a flush blocked on a full send window
	// holds its coalescer's lock until the sealed conn releases it.
	for _, co := range coal {
		if co != nil {
			co.close()
		}
	}
	cc.close()
}
