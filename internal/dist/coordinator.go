package dist

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"os"
	"sync"
	"time"

	"glasswing/internal/blockstore"
	"glasswing/internal/kv"
	"glasswing/internal/obs"
)

// ElasticEvent schedules one membership change during a job, triggered by
// scheduler progress: the event fires once AfterMapDone map tasks have
// resolved (or, when AfterReduceDone > 0, once that many reduce partitions
// have been accepted). Events fire strictly in declaration order; an event
// whose threshold is already met fires immediately after its predecessor.
//
//   - "join": spawn one new worker into the cluster (loopback-only — a
//     multi-process cluster admits joiners whenever they dial in).
//   - "drain": gracefully remove Worker — stop assigning it work, hand its
//     partitions off to survivors, then release it.
//   - "kill": murder Worker abruptly (loopback-only), exercising the death
//     recovery path.
//   - "restart": crash the coordinator itself. With a journal configured,
//     the loopback runner restarts it and resumes from the checkpoint.
type ElasticEvent struct {
	Kind            string // "join", "drain", "kill" or "restart"
	Worker          int    // target worker id (drain/kill); ignored otherwise
	AfterMapDone    int    // fire once this many map tasks have resolved
	AfterReduceDone int    // when > 0, fire once this many partitions are accepted instead
}

// Options configures one distributed job from the coordinator's side. The
// loopback runner shares this type; fields marked loopback-only are ignored
// by the multi-process Serve entry point.
type Options struct {
	Job     Job
	Workers int
	Tuning  Tuning
	// Blocks are the map input splits; one map task per block.
	Blocks [][]byte
	// Telemetry receives the coordinator-side counters; in loopback mode the
	// workers share it too (spans, conserv_* ledger).
	Telemetry *obs.Telemetry
	// TraceID identifies the job's distributed trace. 0 mints one from the
	// wall clock; a resident service passes the id it already handed the
	// client so the job's spans correlate with its journal.
	TraceID uint64
	// Journal, if set, receives structured scheduling events (map retries,
	// worker deaths, membership changes) — callers attach job/tenant/trace
	// context up front via slog.With.
	Journal *slog.Logger

	// NewApp resolves the job's application (loopback-only; multi-process
	// workers use the registry). The resolver's partitioner return value
	// overrides the default hash partitioner.
	NewApp Resolver
	// MapFault injects attempt failures after the map kernel but before any
	// shuffle effect (loopback-only).
	MapFault func(task, attempt int) bool
	// KillWorker, when >= 0, kills that worker once KillAfterMapDone map
	// tasks have resolved (loopback-only; folded into Elastic internally).
	KillWorker       int
	KillAfterMapDone int

	// Elastic schedules membership churn — joins, drains, kills and
	// coordinator restarts — against scheduler progress. Joins, kills and
	// restarts need the loopback runner's hooks; drains work anywhere.
	Elastic []ElasticEvent
	// Blockstore selects how map input reaches workers. "" ships each block
	// embedded in its map-task frame (the classic path). "local" ingests
	// every block into Replication worker disks up front and schedules each
	// task on a replica holder — the Fig 3(d) move-compute-to-data mode;
	// non-holders (steals, retries) stream the block from a holder. "remote"
	// ingests identically but pins every task away from its replicas, the
	// locality-off baseline the conformance suite diffs against.
	Blockstore string
	// Replication is block-store replica count (0 = default 3, clamped to
	// the cluster width; "remote" further clamps to width-1 so a non-holder
	// always exists).
	Replication int

	// JournalPath enables the checkpoint journal: an append-only, fsynced
	// record of task resolutions, partition homes, shuffle commit marks and
	// membership epochs, written write-ahead of every broadcast.
	JournalPath string
	// Resume replays JournalPath instead of forming a fresh cluster: the
	// coordinator validates the journal against this job, collects rejoins
	// from every journaled-live worker, and picks the job back up.
	Resume bool
}

// coordinator phases.
const (
	phaseMap = iota
	phaseReduce
	phaseDone
)

// Coordinator-side worker states. A joiner is admitted as wJoining and
// promoted to wActive when its join transition completes; a drain target
// moves wActive → wDraining → wDrained. Only wActive workers are assigned
// map tasks or own partitions.
const (
	wActive = iota
	wJoining
	wDraining
	wDrained
)

// cworker is the coordinator's view of one worker node.
type cworker struct {
	cc          *conn
	addr        string // peer-facing listen address
	alive       bool
	state       int
	outstanding int             // map tasks dispatched, not yet reported
	clock       *clockEstimator // NTP-style offset estimate for this worker
}

// cevent is one frame (or connection loss) from one worker, funneled into
// the coordinator's single event loop by per-worker reader goroutines.
// Admission events (a candidate's first frame) carry w == -1 and the
// candidate's connection.
type cevent struct {
	w       int
	typ     byte
	payload []byte
	err     error
	cc      *conn
}

// transition is one queued or in-flight membership change. Transitions run
// one at a time: the cluster quiesces (no outstanding map attempts), the
// epoch bumps, partition homes rebalance, the rehome broadcast goes out,
// and the transition completes when every moved partition's new home
// reports its handoff adopted.
type transition struct {
	kind    string // "join" or "drain"
	target  int
	claimed bool // holds a pendingMembership claim (event-spawned churn)
	started bool // quiesce passed: epoch bumped, rehome broadcast
	epoch   int
	pending map[int]bool // partitions whose handoff is still outstanding
}

// loopHooks are the loopback runner's fault and elasticity hooks: kill
// murders a worker in-process, spawn launches one new live-join worker.
type loopHooks struct {
	kill  func(id int)
	spawn func()
}

// restartCrash is the error a scheduled coordinator restart fails with;
// the loopback runner catches it, re-listens, and resumes from the journal.
// fired is how many elastic events (including the restart itself) had been
// consumed, so the resumed coordinator picks up after them.
type restartCrash struct{ fired int }

func (*restartCrash) Error() string { return "dist: coordinator restarted (elastic schedule)" }

// CoordinatorRestarted reports whether a Serve error is a scheduled
// restart crash: the job is not failed, the journal is complete, and a new
// coordinator process can resume it with Options.Resume (cmd/distnode's
// -resume flag) while the workers redial in.
func CoordinatorRestarted(err error) bool {
	var rc *restartCrash
	return errors.As(err, &rc)
}

// acceptTimeout bounds cluster formation so a worker that never dials
// fails the job instead of hanging CI.
const acceptTimeout = 60 * time.Second

// serve runs the coordinator side of one job on an already-open listener:
// form the cluster (or resume it from the journal), drive the map phase
// through the scheduler, apply elastic membership changes, gate reduce on
// full shuffle commit, and assemble the result. led receives the
// coordinator-side reduce conservation counters (shared with the workers in
// loopback mode); hooks are the loopback fault/elasticity callbacks.
func serve(ln net.Listener, o Options, led *ledger, hooks loopHooks) (*Result, error) {
	o.Job = o.Job.withDefaults()
	tun := o.Tuning.withDefaults()
	n := o.Workers
	if n <= 0 && !o.Resume {
		return nil, fmt.Errorf("dist: need at least one worker, got %d", n)
	}
	if len(o.Blocks) == 0 {
		return nil, fmt.Errorf("dist: no input blocks")
	}
	if o.Blockstore != "" && o.Blockstore != "local" && o.Blockstore != "remote" {
		return nil, fmt.Errorf("dist: unknown blockstore mode %q", o.Blockstore)
	}
	if led == nil {
		led = newLedger(o.Telemetry)
	}
	elastic := o.Elastic
	if hooks.kill != nil && o.KillWorker >= 0 && o.KillWorker < n {
		elastic = append(append([]ElasticEvent(nil), elastic...), ElasticEvent{
			Kind: "kill", Worker: o.KillWorker, AfterMapDone: o.KillAfterMapDone,
		})
	}

	start := time.Now()
	traceID := o.TraceID
	if traceID == 0 {
		traceID = uint64(time.Now().UnixNano())
	}
	// The coordinator records its own scheduling spans as node -1 — the
	// merged trace's "coordinator" process — and its epoch is the timeline
	// every worker batch is rebased onto.
	ctr := newTracer(nil, -1)
	nTasks := len(o.Blocks)

	res := &Result{App: o.Job.App.Name, Workers: n}
	for _, b := range o.Blocks {
		res.InputBytes += int64(len(b))
	}

	var (
		ws    []*cworker // index by worker id; grows on join
		alive []bool
		homes []int
		epoch int
		sched *dsched
		jn    *journal
	)
	// Block-store namespace: holders[t] is the replica set of block t,
	// computed once at formation width and journaled so a resumed coordinator
	// reconstructs the same placement the workers' disks actually hold.
	var holders [][]int
	bsRepl := o.Replication
	if bsRepl <= 0 {
		bsRepl = 3
	}
	placeBlocks := func(width int) {
		if o.Blockstore == "" || width <= 0 {
			return
		}
		if o.Blockstore == "remote" && bsRepl >= width && width > 1 {
			// Forced-remote needs a non-holder to run every task on.
			bsRepl = width - 1
		}
		if bsRepl > width {
			bsRepl = width
		}
		holders = blockstore.Place(nTasks, width, bsRepl)
	}
	interPairs := make([]int64, nTasks) // per task, last winning attempt
	outputs := make([][]kv.Pair, o.Job.Partitions)
	donePart := make([]bool, o.Job.Partitions)
	donePartCount := 0
	reduceAttempt := make([]int, o.Job.Partitions)
	// settledResident[p] is how many committed records still live at
	// partition p's home after its output was accepted. If that home dies,
	// the records are settled — consumed by a final output, then lost with
	// the store — not recoverable losses; the death handler books them so
	// the conservation ledger stays exact. Zeroed once booked: the data
	// existed on exactly one store, and nothing re-ships to a settled
	// partition.
	settledResident := make([]int64, o.Job.Partitions)

	defer func() {
		for _, cw := range ws {
			if cw != nil && cw.cc != nil {
				cw.cc.close()
			}
		}
	}()
	defer func() { jn.close() }()

	if o.Resume {
		// ----- resume formation: replay the journal, collect rejoins -----
		if o.JournalPath == "" {
			return nil, fmt.Errorf(resumeRefused + ": no journal path configured")
		}
		data, err := os.ReadFile(o.JournalPath)
		if err != nil {
			return nil, fmt.Errorf(resumeRefused+": %v", err)
		}
		rs, err := replayJournal(data)
		if err != nil {
			return nil, err
		}
		if err := rs.validateResume(&o); err != nil {
			return nil, err
		}
		if rs.bsMode != "" {
			// Rebuild the namespace exactly as formed: the journaled width and
			// replication reproduce the placement the workers' disks hold, so
			// resume never re-ingests — rejoining workers still have their
			// replicas, and dead holders fall out at dispatch time.
			bsRepl = rs.bsRepl
			placeBlocks(rs.bsWidth)
		}
		traceID = rs.traceID
		epoch = rs.epoch
		homes = append([]int(nil), rs.homes...)
		alive = append([]bool(nil), rs.alive...)
		ws = make([]*cworker, len(alive))
		need := make(map[int]bool)
		for i, a := range alive {
			if a {
				need[i] = true
			} else {
				ws[i] = &cworker{alive: false, state: wActive}
			}
		}
		deadline := time.Now().Add(acceptTimeout)
		for len(need) > 0 {
			if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
				d.SetDeadline(deadline)
			}
			c, err := ln.Accept()
			if err != nil {
				return nil, fmt.Errorf("dist: resume: awaiting %d workers to rejoin: %w", len(need), err)
			}
			cc := newConn(c, "rejoin", tun, nil)
			typ, p, err := cc.recv()
			if err != nil || typ != mRejoin {
				cc.close()
				continue
			}
			m, err := decodeRejoin(p)
			if err != nil {
				cc.close()
				continue
			}
			switch {
			case m.Epoch > epoch:
				cc.close()
				return nil, fmt.Errorf(resumeRefused+": worker %d is at epoch %d, ahead of the journal's %d",
					m.WorkerID, m.Epoch, epoch)
			case m.WorkerID >= 0 && m.WorkerID < len(ws) && need[m.WorkerID]:
				cw := &cworker{cc: cc, addr: m.ListenAddr, alive: true, state: wActive, clock: &clockEstimator{}}
				ws[m.WorkerID] = cw
				cc.enableClock(cw.clock, tun.HeartbeatEvery)
				delete(need, m.WorkerID)
			case m.WorkerID >= len(ws):
				// Admitted after the journal's last membership record (a join
				// whose transition never started before the crash): adopt it
				// as a full member owning no partitions — the peer mesh it
				// built before the crash is intact.
				for len(ws) < m.WorkerID {
					ws = append(ws, &cworker{alive: false, state: wActive})
					alive = append(alive, false)
				}
				cw := &cworker{cc: cc, addr: m.ListenAddr, alive: true, state: wActive, clock: &clockEstimator{}}
				ws = append(ws, cw)
				alive = append(alive, true)
				cc.enableClock(cw.clock, tun.HeartbeatEvery)
			default:
				// The journal says this worker already left (drained or its
				// rejoin slot is already filled): let it exit cleanly.
				cc.send(frame{typ: mDrained})
				cc.flush()
				cc.close()
			}
		}
		jn, err = openJournalAppend(o.JournalPath)
		if err != nil {
			return nil, err
		}
		sched = newSchedResume(nTasks, len(ws), o.Job.MaxAttempts, rs.resolved, rs.attempt, alive)
		for t := 0; t < nTasks; t++ {
			if rs.resolved[t] {
				interPairs[t] = rs.stats[t].PairsOut
			}
		}
		for p, out := range rs.outputs {
			pairs, err := kv.Unmarshal(out)
			if err != nil {
				return nil, fmt.Errorf(resumeRefused+": journaled output for partition %d: %v", p, err)
			}
			outputs[p] = pairs
			donePart[p] = true
			donePartCount++
			reduceAttempt[p] = rs.reduceAt[p]
			settledResident[p] = rs.records[p]
			res.OutputPairs += len(pairs)
		}
		res.WorkersJoined = rs.joined
		res.WorkersDrained = rs.drained
		res.WorkersLost = rs.lost
		res.Resumed = true
		// Re-sync every rejoined worker: the refresh carries the journaled
		// epoch, homes and liveness, so a worker that missed a crash-window
		// broadcast applies it now — including any handoff it still owes
		// (journaling is write-ahead, so the journal is never behind a
		// broadcast a worker saw).
		refresh := rehomeMsg{Epoch: epoch, Homes: homes, Alive: alive, Joined: -1, Left: -1}.encode()
		for _, cw := range ws {
			if cw != nil && cw.cc != nil && cw.alive {
				cw.cc.send(frame{typ: mRehome, payload: refresh})
			}
		}
	} else {
		// ----- fresh formation: worker ids in order of arrival -----
		ws = make([]*cworker, n)
		for i := 0; i < n; i++ {
			if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
				d.SetDeadline(time.Now().Add(acceptTimeout))
			}
			c, err := ln.Accept()
			if err != nil {
				return nil, fmt.Errorf("dist: awaiting worker %d/%d: %w", i+1, n, err)
			}
			cc := newConn(c, fmt.Sprintf("worker%d", i), tun, nil)
			typ, p, err := cc.recv()
			if err != nil || (typ != mJoin && typ != mHello) {
				cc.close()
				return nil, fmt.Errorf("dist: bad join from worker %d (%s): %v", i, typeName(typ), err)
			}
			h, err := decodeHello(p)
			if err != nil {
				cc.close()
				return nil, err
			}
			ws[i] = &cworker{cc: cc, addr: h.ListenAddr, alive: true, state: wActive, clock: &clockEstimator{}}
			// Only the coordinator probes; the worker side just echoes. The
			// initial probe burst lands during formation, before shuffle
			// traffic can queue behind it.
			ws[i].cc.enableClock(ws[i].clock, tun.HeartbeatEvery)
		}
		alive = make([]bool, n)
		for i := range alive {
			alive[i] = true
		}
		homes = make([]int, o.Job.Partitions)
		for p := range homes {
			homes[p] = p % n
		}
		placeBlocks(n)
		var prefer []int
		if holders != nil {
			prefer = make([]int, nTasks)
			for t := range prefer {
				if o.Blockstore == "remote" {
					// First worker past the replica window: never a holder.
					prefer[t] = (t + len(holders[t])) % n
				} else {
					// holders[t][0] is t%n, so the locality-preferring deal
					// keeps the classic deal's balance exactly.
					prefer[t] = holders[t][0]
				}
			}
		}
		sched = newSchedAffinity(nTasks, n, o.Job.MaxAttempts, prefer)
		if o.JournalPath != "" {
			var err error
			jn, err = createJournal(o.JournalPath)
			if err != nil {
				return nil, err
			}
			if err := jn.jobStart(o.Job, traceID, nTasks, blocksDigest(o.Blocks)); err != nil {
				return nil, err
			}
			if o.Blockstore != "" {
				if err := jn.namespace(o.Blockstore, bsRepl, n); err != nil {
					return nil, err
				}
			}
			if err := jn.membership(0, homes, alive, sched.attempt, 0, 0, 0); err != nil {
				return nil, err
			}
		}
		peers := make([]string, n)
		for i, cw := range ws {
			peers[i] = cw.addr
		}
		for i, cw := range ws {
			cw.cc.send(frame{typ: mWelcome, payload: welcomeMsg{WorkerID: i, Workers: n}.encode()})
			cw.cc.send(frame{typ: mJobStart, payload: jobStartMsg{
				Job: o.Job, TraceID: traceID, Peers: peers, Homes: homes, Epoch: 0, Live: false,
			}.encode()})
		}
		// Ingest the namespace: push every block to each of its replica
		// holders, after job-start so the worker's handshake stays two
		// frames, before any map task thanks to FIFO links. Puts ride the
		// bulk send window, so a slow disk backpressures the push instead of
		// ballooning the queue; replica bytes are booked by the receiving
		// worker as dist_block_ingest_bytes_total, never as shuffle traffic.
		for t, hs := range holders {
			payload := blockPutMsg{ID: t, Data: o.Blocks[t]}.encode()
			for _, h := range hs {
				ws[h].cc.send(frame{typ: mBlockPut, payload: payload, bulk: true, acct: int64(len(payload))})
			}
		}
	}

	// Post-formation acceptor: candidates dialing in after the job started
	// (live joiners, or stragglers rejoining a resumed coordinator) are
	// handshaken off-loop and funneled into the event loop as admission
	// events. The admission gate closes when serve returns — a candidate
	// admitted into a dead coordinator's queue would otherwise keep its
	// connection (and the worker behind it) alive forever.
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(time.Time{})
	}
	events := make(chan cevent, 1024)
	var admitMu sync.Mutex
	admitOpen := true
	defer func() {
		admitMu.Lock()
		admitOpen = false
		admitMu.Unlock()
		// Nothing can enqueue past this point; close whatever made it in.
		for {
			select {
			case ev := <-events:
				if ev.cc != nil {
					ev.cc.close()
				}
			default:
				return
			}
		}
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				cc := newConn(c, "joiner", tun, nil)
				typ, p, err := cc.recv()
				if err != nil {
					cc.close()
					return
				}
				admitMu.Lock()
				if admitOpen {
					events <- cevent{w: -1, typ: typ, payload: p, cc: cc}
					admitMu.Unlock()
					return
				}
				admitMu.Unlock()
				cc.close()
			}(c)
		}
	}()

	readers := 0
	startReader := func(i int, cc *conn) {
		readers++
		go func() {
			for {
				typ, p, err := cc.recv()
				if err != nil {
					events <- cevent{w: i, err: err}
					return
				}
				events <- cevent{w: i, typ: typ, payload: p}
			}
		}()
	}
	for i, cw := range ws {
		if cw != nil && cw.cc != nil && cw.alive {
			startReader(i, cw.cc)
		}
	}

	phase := phaseMap
	var jobErr error
	reduceOutstanding := 0
	var mapElapsed time.Duration
	var reduceStart time.Time
	pendingKills := make(map[int]bool) // kills fired, death not yet observed
	pendingMembership := 0             // event-spawned churn not yet completed
	eventIdx := 0
	var queuedT []*transition
	var activeT *transition

	// Open scheduling spans: sched/assign keyed by (task, attempt),
	// sched/reduce by partition. A span ends when its done/failed report
	// lands; dispatches that die with their worker are simply never
	// recorded (the retry opens a fresh span).
	assignSpans := make(map[attemptKey]func())
	reduceSpans := make(map[int]func())
	var batches []spanBatchMsg

	countLive := func() int {
		c := 0
		for _, cw := range ws {
			if cw != nil && cw.alive && cw.state != wDrained {
				c++
			}
		}
		return c
	}
	// schedAlive is the scheduler's view of liveness: only wActive workers
	// may receive, steal or inherit tasks. Joiners still meshing and drain
	// targets are excluded so nothing is queued where it cannot run.
	schedAlive := func() []bool {
		v := make([]bool, len(ws))
		for i, cw := range ws {
			v[i] = cw != nil && cw.alive && cw.state == wActive
		}
		return v
	}
	activeIDs := func(except int) []int {
		var ids []int
		for i, cw := range ws {
			if i != except && cw != nil && cw.alive && cw.state == wActive {
				ids = append(ids, i)
			}
		}
		return ids
	}
	totalOutstanding := func() int {
		sum := 0
		for _, cw := range ws {
			if cw != nil && cw.alive {
				sum += cw.outstanding
			}
		}
		return sum
	}
	broadcast := func(f frame) {
		for _, cw := range ws {
			if cw != nil && cw.alive && cw.cc != nil && cw.state != wDrained {
				cw.cc.send(f)
			}
		}
	}

	var (
		fail                func(error)
		fill                func()
		maybeReduce         func()
		finishJob           func()
		fireEvents          func()
		startNextTransition func()
		tryAdvance          func()
		completeTransition  func()
		death               func(int)
	)

	journalMembership := func() {
		if jn == nil {
			return
		}
		if err := jn.membership(epoch, homes, alive, sched.attempt,
			res.WorkersJoined, res.WorkersDrained, res.WorkersLost); err != nil {
			fail(err)
		}
	}

	fail = func(err error) {
		if jobErr == nil {
			jobErr = err
		}
		phase = phaseDone
		for _, cw := range ws {
			if cw != nil && cw.cc != nil {
				cw.cc.close() // hard: unblock every reader
			}
		}
	}

	// fill tops every active worker up to its MapSlots quota. Dispatch
	// pauses while a membership transition is queued or in flight: the
	// transition needs the cluster quiesced, and new attempts would stage
	// shuffle output across a partition map about to move.
	fill = func() {
		if phase != phaseMap || jobErr != nil || activeT != nil || len(queuedT) > 0 {
			return
		}
		sa := schedAlive()
		for w, cw := range ws {
			if cw == nil || !cw.alive || cw.state != wActive {
				continue
			}
			for cw.outstanding < tun.MapSlots {
				t, ok := sched.next(w, sa)
				if !ok {
					break
				}
				id, endSpan := ctr.span(stageSchedAssign, 0)
				assignSpans[attemptKey{t, sched.attempt[t]}] = endSpan
				msg := mapTaskMsg{Task: t, Attempt: sched.attempt[t], SpanID: id}
				if holders == nil {
					msg.Block = o.Blocks[t]
				} else {
					// Block-store dispatch: a reference plus the replica set
					// still alive to serve it. AllowLocal=false is the
					// forced-remote baseline — even a holder must stream.
					msg.Ref = true
					msg.BlockSize = int64(len(o.Blocks[t]))
					msg.AllowLocal = o.Blockstore != "remote"
					for _, h := range holders[t] {
						if h < len(ws) && ws[h] != nil && ws[h].alive && ws[h].state != wDrained {
							msg.Holders = append(msg.Holders, h)
						}
					}
					if len(msg.Holders) == 0 {
						// Every replica is gone: embed the bytes — availability
						// beats locality, and the read books as remote.
						msg.Block = o.Blocks[t]
					}
				}
				cw.cc.send(frame{typ: mMapTask, payload: msg.encode()})
				cw.outstanding++
			}
		}
	}

	finishJob = func() {
		if phase == phaseDone {
			return
		}
		phase = phaseDone
		if !reduceStart.IsZero() {
			res.ReduceElapsed = time.Since(reduceStart)
		}
		broadcast(frame{typ: mJobEnd})
		// Workers close their end after job-end; readers drain out.
	}

	// maybeReduce fires the reduce phase once every map task is resolved —
	// and, crucially, once no kill or membership change is pending: a kill
	// that has been triggered but whose death the coordinator has not yet
	// observed must not let reduce start against a store that is about to
	// be lost, and partitions must not move while reduce reads them.
	maybeReduce = func() {
		if phase != phaseMap || jobErr != nil || len(pendingKills) > 0 ||
			pendingMembership > 0 || activeT != nil || len(queuedT) > 0 ||
			sched.resolvedCount != sched.total {
			return
		}
		phase = phaseReduce
		if mapElapsed == 0 {
			mapElapsed = time.Since(start)
		}
		reduceStart = time.Now()
		for p := 0; p < o.Job.Partitions; p++ {
			if donePart[p] {
				continue // accepted before a restart or recovery; output is final
			}
			id, endSpan := ctr.span(stageSchedReduce, 0)
			reduceSpans[p] = endSpan
			ws[homes[p]].cc.send(frame{typ: mReduceTask, payload: reduceTaskMsg{
				Partition: p, Attempt: reduceAttempt[p], SpanID: id,
			}.encode()})
			reduceOutstanding++
		}
		if reduceOutstanding == 0 {
			finishJob()
		}
	}

	// fireEvents consumes elastic events whose progress threshold has been
	// met, strictly in order.
	fireEvents = func() {
		for jobErr == nil && eventIdx < len(elastic) {
			e := elastic[eventIdx]
			trigger, threshold := sched.resolvedCount, e.AfterMapDone
			if e.AfterReduceDone > 0 {
				trigger, threshold = donePartCount, e.AfterReduceDone
			}
			if trigger < threshold {
				return
			}
			// A drain or kill may target a joiner from an earlier event in the
			// schedule. While that join is still in flight (admission and
			// meshing are async, claimed by pendingMembership), hold the event
			// un-consumed — admission and transition completion re-run
			// fireEvents — instead of silently skipping it.
			if (e.Kind == "drain" || e.Kind == "kill") && pendingMembership > 0 &&
				(e.Worker >= len(ws) || ws[e.Worker] == nil || ws[e.Worker].state == wJoining) {
				return
			}
			eventIdx++
			switch e.Kind {
			case "join":
				if hooks.spawn != nil {
					pendingMembership++
					go hooks.spawn()
				}
			case "drain":
				if e.Worker >= 0 && e.Worker < len(ws) && ws[e.Worker] != nil &&
					ws[e.Worker].alive && ws[e.Worker].state == wActive {
					ws[e.Worker].state = wDraining
					pendingMembership++
					queuedT = append(queuedT, &transition{kind: "drain", target: e.Worker, claimed: true})
					startNextTransition()
				}
			case "kill":
				if hooks.kill != nil && e.Worker >= 0 && e.Worker < len(ws) &&
					ws[e.Worker] != nil && ws[e.Worker].alive {
					pendingKills[e.Worker] = true
					// The kill hook runs off-loop: it closes the victim's
					// coordinator link, which comes back as this loop's
					// death event.
					go hooks.kill(e.Worker)
				}
			case "restart":
				fail(&restartCrash{fired: eventIdx})
				return
			}
		}
	}

	// startNextTransition promotes the head of the transition queue,
	// dropping entries invalidated by deaths along the way.
	startNextTransition = func() {
		if activeT != nil || jobErr != nil {
			return
		}
		for activeT == nil && len(queuedT) > 0 {
			t := queuedT[0]
			queuedT = queuedT[1:]
			cw := ws[t.target]
			switch {
			case cw == nil || !cw.alive:
				if t.claimed {
					pendingMembership--
				}
			case t.kind == "drain" && len(activeIDs(t.target)) == 0:
				// Can't drain the last active worker; drop the drain.
				cw.state = wActive
				if t.claimed {
					pendingMembership--
				}
			default:
				activeT = t
			}
		}
		if activeT != nil {
			tryAdvance()
		}
	}

	// tryAdvance starts the active transition once the cluster is quiesced:
	// no outstanding map attempts means every shipped run has passed its
	// commit barrier, so the partition map can move without stranding
	// staged data.
	tryAdvance = func() {
		if activeT == nil || activeT.started || jobErr != nil || phase != phaseMap {
			return
		}
		if totalOutstanding() > 0 {
			return
		}
		t := activeT
		epoch++
		t.epoch = epoch
		t.pending = make(map[int]bool)
		if t.kind == "join" {
			// Move ⌊P/live⌋ partitions to the joiner, one at a time from the
			// currently most-loaded owner (lowest id on ties) — deterministic
			// and balanced.
			surv := activeIDs(-1)
			want := len(homes) / (len(surv) + 1)
			for moved := 0; moved < want; moved++ {
				load := make(map[int]int)
				for _, h := range homes {
					load[h]++
				}
				donor, best := -1, 1
				for _, id := range surv {
					if load[id] > best {
						donor, best = id, load[id]
					}
				}
				if donor < 0 {
					break
				}
				for p := range homes {
					if homes[p] == donor {
						homes[p] = t.target
						t.pending[p] = true
						break
					}
				}
			}
			res.WorkersJoined++
		} else {
			surv := activeIDs(t.target)
			rr := 0
			for p := range homes {
				if homes[p] == t.target {
					homes[p] = surv[rr%len(surv)]
					t.pending[p] = true
					rr++
				}
			}
			sched.drain(t.target, schedAlive())
			// Tell the target to stop expecting work and flush its coalescers.
			ws[t.target].cc.send(frame{typ: mDrain})
		}
		// Write-ahead: journal the new epoch before any worker hears of it.
		// A drain journals the target still data-alive — a resume must accept
		// its rejoin while un-handed-off partitions live only on it — while
		// the broadcast announces it compute-dead so peers stop counting it
		// in commit barriers. The second journal record at completion retires
		// it fully.
		journalMembership()
		if jobErr != nil {
			return
		}
		msg := rehomeMsg{Epoch: epoch, Homes: homes, Joined: -1, Left: -1}
		msg.Alive = append([]bool(nil), alive...)
		if t.kind == "join" {
			msg.Joined = t.target
			msg.JoinedAddr = ws[t.target].addr
		} else {
			msg.Left = t.target
			msg.Alive[t.target] = false
		}
		payload := msg.encode()
		broadcast(frame{typ: mRehome, payload: payload})
		t.started = true
		if o.Journal != nil {
			o.Journal.Info("rehome", "kind", t.kind, "target", t.target, "epoch", epoch, "moved", len(t.pending))
		}
		if len(t.pending) == 0 {
			completeTransition()
		}
	}

	completeTransition = func() {
		t := activeT
		if t == nil || !t.started || len(t.pending) > 0 {
			return
		}
		activeT = nil
		if t.claimed {
			pendingMembership--
		}
		if t.kind == "join" {
			ws[t.target].state = wActive
			// Rescue tasks stranded on dead workers' queues now that a fresh
			// active worker exists (possible only if every prior active died
			// while the joiner was meshing).
			sa := schedAlive()
			for i, cw := range ws {
				if (cw == nil || !cw.alive) && i < len(sched.queues) && len(sched.queues[i]) > 0 {
					sched.drain(i, sa)
				}
			}
		} else {
			epoch++
			alive[t.target] = false
			cw := ws[t.target]
			cw.alive = false
			cw.state = wDrained
			res.WorkersDrained++
			journalMembership()
			if jobErr != nil {
				return
			}
			cw.cc.send(frame{typ: mDrained})
		}
		if o.Journal != nil {
			o.Journal.Info("membership-complete", "kind", t.kind, "target", t.target, "epoch", epoch)
		}
		fireEvents() // a drain/kill deferred on this join's completion can fire now
		startNextTransition()
		fill()
		maybeReduce()
	}

	death = func(w int) {
		cw := ws[w]
		if cw == nil || !cw.alive {
			return
		}
		cw.alive = false
		alive[w] = false
		cw.outstanding = 0
		wasJoining := cw.state == wJoining
		res.WorkersLost++
		delete(pendingKills, w)
		if o.Journal != nil {
			o.Journal.Info("worker-dead", "worker", w, "live", countLive())
		}
		// Release any membership claims the dead worker holds.
		released := false
		keep := queuedT[:0]
		for _, t := range queuedT {
			if t.target == w {
				if t.claimed {
					pendingMembership--
				}
				released = true
				continue
			}
			keep = append(keep, t)
		}
		queuedT = keep
		if activeT != nil {
			t := activeT
			switch {
			case !t.started && t.target == w:
				if t.claimed {
					pendingMembership--
				}
				released = true
				activeT = nil
			case !t.started:
				// Bystander death while the transition awaits quiesce: keep
				// it; quiesce re-checks after redistribution.
			default:
				// Started: the handoff plan is invalidated — the dead worker
				// may be its source, target or destination. Abort: death
				// re-execution supersedes whatever moved, and the store's
				// epoch fence drops stale handoff remnants. A join target
				// survives as a full (empty-handed) member; a drain target
				// survives in limbo — compute-dead to its peers, data-alive,
				// owning nothing — and idles until job end.
				if t.kind == "join" && t.target != w {
					ws[t.target].state = wActive
				}
				if t.claimed {
					pendingMembership--
				}
				if t.target == w {
					released = true
				}
				activeT = nil
			}
		}
		// A joiner that died between spawn and its mJoinReady holds the
		// spawn-time claim with no transition to release it.
		if wasJoining && !released && hooks.spawn != nil {
			pendingMembership--
		}
		if countLive() == 0 {
			fail(fmt.Errorf("dist: all workers dead"))
			return
		}
		surv := activeIDs(-1)
		if len(surv) == 0 {
			fail(fmt.Errorf("dist: no active workers left"))
			return
		}
		// Accepted outputs whose home just died take their resident records
		// with them: the dying store books them lost, so book them settled
		// here or the ledger reads them as recoverable losses. Zeroing makes
		// a second death of the partition's (empty-handed) next home book 0.
		for p, h := range homes {
			if h == w && donePart[p] {
				led.storeSettled.Add(settledResident[p])
				settledResident[p] = 0
			}
		}
		if donePartCount == o.Job.Partitions {
			// Every partition's output was already accepted — final by
			// definition — so the death recovers nothing. Finish instead of
			// re-executing the world.
			finishJob()
			return
		}
		if phase == phaseReduce {
			// Reduce-phase death is no longer fatal: cancel the reduce wave,
			// fall back to the map phase, and let death redistribution
			// re-execute what died with the worker's store. Partitions whose
			// output was already accepted keep it — first acceptance is
			// final — and late reports from the cancelled wave are still
			// accepted if their partition's data was complete.
			phase = phaseMap
			reduceOutstanding = 0
			for p, end := range reduceSpans {
				end()
				delete(reduceSpans, p)
			}
			for p := 0; p < o.Job.Partitions; p++ {
				if !donePart[p] {
					reduceAttempt[p]++
				}
			}
		}
		// Re-home the dead worker's partitions across active survivors,
		// deterministically: ascending partitions, cycling ascending ids.
		rr := 0
		for p := range homes {
			if homes[p] == w {
				homes[p] = surv[rr%len(surv)]
				rr++
			}
		}
		epoch++
		sched.death(w, schedAlive())
		journalMembership()
		if jobErr != nil {
			return
		}
		broadcast(frame{typ: mWorkerDead, payload: workerDeadMsg{
			Dead: w, Homes: homes, Epoch: epoch,
			Settled: append([]bool(nil), donePart...),
		}.encode()})
		fill()
		tryAdvance()
		maybeReduce()
	}

	fill()
	fireEvents()
	maybeReduce() // a resumed job may already have every task and partition done

	for readers > 0 {
		ev := <-events
		if ev.w < 0 {
			// Admission: a candidate's first frame, handshaken off-loop.
			cc := ev.cc
			if jobErr != nil || phase == phaseDone {
				cc.close()
				continue
			}
			switch ev.typ {
			case mJoin, mHello:
				// Joiners are admitted in either phase: a mid-reduce joiner
				// meshes, idles (its transition waits for a map phase that may
				// never come back) and exits at job end — refusing it would
				// strand its spawn claim.
				h, err := decodeHello(ev.payload)
				if err != nil {
					cc.close()
					continue
				}
				id := len(ws)
				cw := &cworker{cc: cc, addr: h.ListenAddr, alive: true, state: wJoining, clock: &clockEstimator{}}
				ws = append(ws, cw)
				alive = append(alive, true)
				sched.join(id)
				cc.enableClock(cw.clock, tun.HeartbeatEvery)
				ps := make([]string, len(ws))
				for i, w2 := range ws {
					if w2 != nil && w2.alive && w2.cc != nil {
						ps[i] = w2.addr
					}
				}
				cc.send(frame{typ: mWelcome, payload: welcomeMsg{WorkerID: id, Workers: len(ws)}.encode()})
				cc.send(frame{typ: mJobStart, payload: jobStartMsg{
					Job: o.Job, TraceID: traceID, Peers: ps, Homes: homes, Epoch: epoch, Live: true,
				}.encode()})
				startReader(id, cc)
				if o.Journal != nil {
					o.Journal.Info("worker-join", "worker", id, "addr", h.ListenAddr)
				}
				fireEvents() // a deferred drain/kill of this joiner can fire now
			case mRejoin:
				// A pre-crash joiner whose admission post-dates the journal's
				// last membership record, rejoining late (after resume
				// formation already closed). Adopt it like the formation path.
				m, err := decodeRejoin(ev.payload)
				if err != nil || m.WorkerID < len(ws) || m.Epoch > epoch {
					cc.close()
					continue
				}
				for len(ws) < m.WorkerID {
					ws = append(ws, &cworker{alive: false, state: wActive})
					alive = append(alive, false)
					sched.join(len(ws) - 1)
				}
				cw := &cworker{cc: cc, addr: m.ListenAddr, alive: true, state: wActive, clock: &clockEstimator{}}
				ws = append(ws, cw)
				alive = append(alive, true)
				sched.join(m.WorkerID)
				cc.enableClock(cw.clock, tun.HeartbeatEvery)
				cc.send(frame{typ: mRehome, payload: rehomeMsg{
					Epoch: epoch, Homes: homes, Alive: alive, Joined: -1, Left: -1,
				}.encode()})
				startReader(m.WorkerID, cc)
				fill()
			default:
				cc.close()
			}
			continue
		}
		if ev.err != nil {
			readers--
			if phase != phaseDone {
				death(ev.w)
			} else if ws[ev.w] != nil && ws[ev.w].alive {
				ws[ev.w].alive = false
				alive[ev.w] = false
			}
			continue
		}
		if ev.typ == mSpanBatch {
			// Span batches arrive as workers wind down — drained workers
			// mid-job, everyone else after job-end — so they are handled
			// ahead of the drain check below.
			if m, err := decodeSpanBatch(ev.payload); err == nil {
				batches = append(batches, m)
			}
			continue
		}
		if phase == phaseDone {
			continue // draining
		}
		switch ev.typ {
		case mMapDone:
			m, err := decodeMapDone(ev.payload)
			if err != nil {
				fail(err)
				continue
			}
			// Clamp rather than decrement blindly: a resumed coordinator can
			// receive reports for attempts dispatched before the crash.
			if ws[ev.w].outstanding > 0 {
				ws[ev.w].outstanding--
			}
			if end := assignSpans[attemptKey{m.Task, m.Attempt}]; end != nil {
				end()
				delete(assignSpans, attemptKey{m.Task, m.Attempt})
			}
			if sched.done(m.Task, m.Attempt) {
				interPairs[m.Task] = m.Stats.PairsOut
				if jn != nil {
					if err := jn.mapDone(m.Task, m.Attempt, m.Stats); err != nil {
						fail(err)
						continue
					}
				}
				fireEvents()
			}
			fill()
			tryAdvance()
			maybeReduce()
		case mMapFailed:
			m, err := decodeTaskFail(ev.payload)
			if err != nil {
				fail(err)
				continue
			}
			if ws[ev.w].outstanding > 0 {
				ws[ev.w].outstanding--
			}
			if end := assignSpans[attemptKey{m.Task, m.Attempt}]; end != nil {
				end()
				delete(assignSpans, attemptKey{m.Task, m.Attempt})
			}
			if o.Journal != nil {
				o.Journal.Info("map-retry", "task", m.Task, "attempt", m.Attempt, "worker", ev.w, "reason", m.Reason)
			}
			if err := sched.fail(m.Task, m.Attempt, ev.w, schedAlive(), m.Reason); err != nil {
				fail(err)
				continue
			}
			fill()
			tryAdvance()
		case mJoinReady:
			// The joiner's peer mesh is connected; it can own partitions now.
			cw := ws[ev.w]
			if cw != nil && cw.alive && cw.state == wJoining {
				queuedT = append(queuedT, &transition{kind: "join", target: ev.w, claimed: hooks.spawn != nil})
				startNextTransition()
			}
		case mHandoffDone:
			m, err := decodeHandoffDone(ev.payload)
			if err != nil {
				fail(err)
				continue
			}
			if activeT != nil && activeT.started && m.Epoch == activeT.epoch {
				delete(activeT.pending, m.Partition)
				completeTransition()
			}
		case mReduceDone:
			m, err := decodeReduceDone(ev.payload)
			if err != nil {
				fail(err)
				continue
			}
			if m.Partition < 0 || m.Partition >= o.Job.Partitions {
				fail(fmt.Errorf("dist: reduce-done for unknown partition %d", m.Partition))
				continue
			}
			if phase == phaseReduce && m.Attempt == reduceAttempt[m.Partition] {
				reduceOutstanding--
			}
			if !donePart[m.Partition] {
				pairs, err := kv.Unmarshal(m.Output)
				if err != nil {
					fail(fmt.Errorf("dist: partition %d output: %w", m.Partition, err))
					continue
				}
				if jn != nil {
					if err := jn.reduceDone(m.Partition, m.Attempt, m.RecordsIn, m.GroupsIn, m.Output); err != nil {
						fail(err)
						continue
					}
				}
				donePart[m.Partition] = true
				donePartCount++
				settledResident[m.Partition] = m.RecordsIn
				outputs[m.Partition] = pairs
				res.OutputPairs += len(pairs)
				// Reduce-side conservation books at first acceptance, here on
				// the coordinator: recoveries and restarts can run a
				// partition's kernel more than once, but only one report may
				// count or the ledger double-books.
				led.reduceRecordsIn.Add(m.RecordsIn)
				led.reduceGroupsIn.Add(m.GroupsIn)
				led.outputPairs.Add(int64(len(pairs)))
				fireEvents()
			}
			if end := reduceSpans[m.Partition]; end != nil {
				end()
				delete(reduceSpans, m.Partition)
			}
			// A fired kill whose death has not yet been observed blocks
			// completion: the scheduled churn must land (and be recovered
			// from) before the job may declare itself done.
			if phase == phaseReduce && reduceOutstanding == 0 && len(pendingKills) == 0 {
				finishJob()
			}
		case mReduceFailed:
			m, err := decodeTaskFail(ev.payload)
			if err == nil {
				err = fmt.Errorf("dist: reduce partition %d failed: %s", m.Task, m.Reason)
			}
			fail(err)
		default:
			fail(fmt.Errorf("dist: unexpected %s from worker %d", typeName(ev.typ), ev.w))
		}
	}

	if jobErr != nil {
		return nil, jobErr
	}
	for _, t := range interPairs {
		res.IntermediatePairs += t
	}
	res.MapRetries = sched.retries
	res.MapRecoveries = sched.recoveries
	res.MapElapsed = mapElapsed
	res.Total = time.Since(start)
	res.outputs = outputs

	// Merge the cluster's trace: the coordinator's own scheduling spans plus
	// every worker's span batch, rebased from the worker's epoch onto ours.
	// The rebase is (worker epoch − coordinator epoch) by the two wall
	// clocks, minus the estimated offset between those clocks — after which
	// a worker that booted with its clock an hour ahead still lands its
	// spans where they causally belong on the coordinator timeline.
	res.TraceID = traceID
	res.ClockOffsets = make(map[int]float64)
	res.ClockRTTs = make(map[int]float64)
	for i, cw := range ws {
		if cw == nil || cw.clock == nil {
			continue
		}
		if off, rtt, ok := cw.clock.estimate(); ok {
			res.ClockOffsets[i] = off / 1e9
			res.ClockRTTs[i] = float64(rtt) / 1e9
		}
	}
	if o.Telemetry != nil && o.Telemetry.Spans != nil {
		for _, s := range ctr.spans() {
			o.Telemetry.Spans.Span(s)
		}
		coordEpoch := ctr.epoch.UnixNano()
		for _, b := range batches {
			var offNs float64
			if b.Node >= 0 && b.Node < len(ws) && ws[b.Node] != nil && ws[b.Node].clock != nil {
				if off, _, ok := ws[b.Node].clock.estimate(); ok {
					offNs = off
				}
			}
			delta := (float64(b.EpochUnixNano-coordEpoch) - offNs) / 1e9
			for _, s := range b.Spans {
				s.Start += delta
				s.End += delta
				o.Telemetry.Spans.Span(s)
			}
		}
	}
	return res, nil
}

// Serve runs a coordinator for one job at addr, waiting for o.Workers
// multi-process workers (cmd/distnode) to join — or, with o.Resume set,
// for the journaled membership to rejoin. Loopback-only Options fields are
// ignored.
func Serve(addr string, o Options) (*Result, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator listen: %w", err)
	}
	defer ln.Close()
	led := newLedger(o.Telemetry)
	res, err := serve(ln, o, led, loopHooks{})
	led.publish()
	return res, err
}
