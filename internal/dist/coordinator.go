package dist

import (
	"fmt"
	"log/slog"
	"net"
	"time"

	"glasswing/internal/kv"
	"glasswing/internal/obs"
)

// Options configures one distributed job from the coordinator's side. The
// loopback runner shares this type; fields marked loopback-only are ignored
// by the multi-process Serve entry point.
type Options struct {
	Job     Job
	Workers int
	Tuning  Tuning
	// Blocks are the map input splits; one map task per block.
	Blocks [][]byte
	// Telemetry receives the coordinator-side counters; in loopback mode the
	// workers share it too (spans, conserv_* ledger).
	Telemetry *obs.Telemetry
	// TraceID identifies the job's distributed trace. 0 mints one from the
	// wall clock; a resident service passes the id it already handed the
	// client so the job's spans correlate with its journal.
	TraceID uint64
	// Journal, if set, receives structured scheduling events (map retries,
	// worker deaths) — callers attach job/tenant/trace context up front via
	// slog.With.
	Journal *slog.Logger

	// NewApp resolves the job's application (loopback-only; multi-process
	// workers use the registry). The resolver's partitioner return value
	// overrides the default hash partitioner.
	NewApp Resolver
	// MapFault injects attempt failures after the map kernel but before any
	// shuffle effect (loopback-only).
	MapFault func(task, attempt int) bool
	// KillWorker, when >= 0, kills that worker once KillAfterMapDone map
	// tasks have resolved (loopback-only).
	KillWorker       int
	KillAfterMapDone int
}

// coordinator phases.
const (
	phaseMap = iota
	phaseReduce
	phaseDone
)

// cworker is the coordinator's view of one worker node.
type cworker struct {
	cc          *conn
	addr        string // peer-facing listen address
	alive       bool
	outstanding int             // map tasks dispatched, not yet reported
	clock       *clockEstimator // NTP-style offset estimate for this worker
}

// cevent is one frame (or connection loss) from one worker, funneled into
// the coordinator's single event loop by per-worker reader goroutines.
type cevent struct {
	w       int
	typ     byte
	payload []byte
	err     error
}

// acceptTimeout bounds cluster formation so a worker that never dials
// fails the job instead of hanging CI.
const acceptTimeout = 60 * time.Second

// serve runs the coordinator side of one job on an already-open listener:
// form the cluster, drive the map phase through the scheduler, gate reduce
// on full shuffle commit, and assemble the result. kill (may be nil) is the
// loopback fault hook that murders a worker in-process.
func serve(ln net.Listener, o Options, kill func(id int)) (*Result, error) {
	o.Job = o.Job.withDefaults()
	tun := o.Tuning.withDefaults()
	n := o.Workers
	if n <= 0 {
		return nil, fmt.Errorf("dist: need at least one worker, got %d", n)
	}
	if len(o.Blocks) == 0 {
		return nil, fmt.Errorf("dist: no input blocks")
	}

	start := time.Now()
	traceID := o.TraceID
	if traceID == 0 {
		traceID = uint64(time.Now().UnixNano())
	}
	// The coordinator records its own scheduling spans as node -1 — the
	// merged trace's "coordinator" process — and its epoch is the timeline
	// every worker batch is rebased onto.
	ctr := newTracer(nil, -1)

	// Cluster formation: worker ids are assigned in order of arrival; the
	// job starts only once every worker's peer listener address is known.
	ws := make([]*cworker, n)
	defer func() {
		for _, cw := range ws {
			if cw != nil {
				cw.cc.close()
			}
		}
	}()
	for i := 0; i < n; i++ {
		if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(time.Now().Add(acceptTimeout))
		}
		c, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("dist: awaiting worker %d/%d: %w", i+1, n, err)
		}
		cc := newConn(c, fmt.Sprintf("worker%d", i), tun, nil)
		typ, p, err := cc.recv()
		if err != nil || typ != mHello {
			cc.close()
			return nil, fmt.Errorf("dist: bad hello from worker %d (%s): %v", i, typeName(typ), err)
		}
		h, err := decodeHello(p)
		if err != nil {
			cc.close()
			return nil, err
		}
		ws[i] = &cworker{cc: cc, addr: h.ListenAddr, alive: true, clock: &clockEstimator{}}
		// Only the coordinator probes; the worker side just echoes. The
		// initial probe burst lands during formation, before shuffle
		// traffic can queue behind it.
		cc.enableClock(ws[i].clock, tun.HeartbeatEvery)
	}

	peers := make([]string, n)
	for i, cw := range ws {
		peers[i] = cw.addr
	}
	homes := make([]int, o.Job.Partitions)
	for p := range homes {
		homes[p] = p % n
	}
	for i, cw := range ws {
		cw.cc.send(frame{typ: mWelcome, payload: welcomeMsg{WorkerID: i, Workers: n}.encode()})
		cw.cc.send(frame{typ: mJobStart, payload: jobStartMsg{Job: o.Job, TraceID: traceID, Peers: peers, Homes: homes}.encode()})
	}

	events := make(chan cevent, 4*n)
	for i, cw := range ws {
		go func(i int, cc *conn) {
			for {
				typ, p, err := cc.recv()
				if err != nil {
					events <- cevent{w: i, err: err}
					return
				}
				events <- cevent{w: i, typ: typ, payload: p}
			}
		}(i, cw.cc)
	}

	sched := newSched(len(o.Blocks), n, o.Job.MaxAttempts)
	alive := make([]bool, n)
	liveCount := n
	for i := range alive {
		alive[i] = true
	}

	res := &Result{App: o.Job.App.Name, Workers: n}
	for _, b := range o.Blocks {
		res.InputBytes += int64(len(b))
	}
	interPairs := make([]int64, len(o.Blocks)) // per task, last winning attempt
	outputs := make([][]kv.Pair, o.Job.Partitions)

	phase := phaseMap
	var jobErr error
	killArmed := kill != nil && o.KillWorker >= 0 && o.KillWorker < n
	pendingKill := false
	reduceOutstanding := 0
	var mapElapsed time.Duration
	var reduceStart time.Time

	// Open scheduling spans: sched/assign keyed by (task, attempt),
	// sched/reduce by partition. A span ends when its done/failed report
	// lands; dispatches that die with their worker are simply never
	// recorded (the retry opens a fresh span).
	assignSpans := make(map[attemptKey]func())
	reduceSpans := make(map[int]func())
	var batches []spanBatchMsg

	fail := func(err error) {
		if jobErr == nil {
			jobErr = err
		}
		phase = phaseDone
		for _, cw := range ws {
			cw.cc.close() // hard: unblock every reader
		}
	}

	// fill tops every live worker up to its MapSlots quota.
	fill := func() {
		if phase != phaseMap || jobErr != nil {
			return
		}
		for w, cw := range ws {
			if !cw.alive {
				continue
			}
			for cw.outstanding < tun.MapSlots {
				t, ok := sched.next(w, alive)
				if !ok {
					break
				}
				id, endSpan := ctr.span(stageSchedAssign, 0)
				assignSpans[attemptKey{t, sched.attempt[t]}] = endSpan
				cw.cc.send(frame{typ: mMapTask, payload: mapTaskMsg{
					Task: t, Attempt: sched.attempt[t], SpanID: id, Block: o.Blocks[t],
				}.encode()})
				cw.outstanding++
			}
		}
	}

	// maybeReduce fires the reduce phase once every map task is resolved —
	// and, crucially, once no kill is pending: a kill that has been
	// triggered but whose death the coordinator has not yet observed must
	// not let reduce start against a store that is about to be lost.
	maybeReduce := func() {
		if phase != phaseMap || jobErr != nil || pendingKill || sched.resolvedCount != sched.total {
			return
		}
		phase = phaseReduce
		mapElapsed = time.Since(start)
		reduceStart = time.Now()
		for p := 0; p < o.Job.Partitions; p++ {
			id, endSpan := ctr.span(stageSchedReduce, 0)
			reduceSpans[p] = endSpan
			ws[homes[p]].cc.send(frame{typ: mReduceTask, payload: reduceTaskMsg{Partition: p, SpanID: id}.encode()})
			reduceOutstanding++
		}
	}

	death := func(w int) {
		if !ws[w].alive {
			return
		}
		ws[w].alive = false
		alive[w] = false
		liveCount--
		res.WorkersLost++
		if o.Journal != nil {
			o.Journal.Info("worker-dead", "worker", w, "live", liveCount)
		}
		if w == o.KillWorker {
			pendingKill = false
		}
		if liveCount == 0 {
			fail(fmt.Errorf("dist: all workers dead"))
			return
		}
		if phase == phaseReduce {
			// Reduce-phase deaths would need output re-execution plus store
			// reconstruction from *completed* map output that also died with
			// the worker — the full job restarts the sim core models. The
			// dist runtime anchors recovery in the map phase, like the sim
			// core's NodeFailures, and treats this as fatal.
			fail(fmt.Errorf("dist: worker %d died during reduce", w))
			return
		}
		// Re-home the dead worker's partitions across survivors,
		// deterministically: ascending partitions, cycling ascending live ids.
		rr := 0
		var live []int
		for i, a := range alive {
			if a {
				live = append(live, i)
			}
		}
		for p := range homes {
			if homes[p] == w {
				homes[p] = live[rr%len(live)]
				rr++
			}
		}
		sched.death(w, alive)
		dead := workerDeadMsg{Dead: w, Homes: homes}.encode()
		for _, cw := range ws {
			if cw.alive {
				cw.cc.send(frame{typ: mWorkerDead, payload: dead})
			}
		}
		fill()
	}

	fill()

	readers := n
	for readers > 0 {
		ev := <-events
		if ev.err != nil {
			readers--
			if phase != phaseDone {
				death(ev.w)
			} else if ws[ev.w].alive {
				ws[ev.w].alive = false
			}
			continue
		}
		if ev.typ == mSpanBatch {
			// Span batches arrive while the job winds down — after job-end
			// has been broadcast and phase is already done — so they are
			// handled ahead of the drain check below.
			if m, err := decodeSpanBatch(ev.payload); err == nil {
				batches = append(batches, m)
			}
			continue
		}
		if phase == phaseDone {
			continue // draining
		}
		switch ev.typ {
		case mMapDone:
			m, err := decodeMapDone(ev.payload)
			if err != nil {
				fail(err)
				continue
			}
			ws[ev.w].outstanding--
			if end := assignSpans[attemptKey{m.Task, m.Attempt}]; end != nil {
				end()
				delete(assignSpans, attemptKey{m.Task, m.Attempt})
			}
			if sched.done(m.Task, m.Attempt) {
				interPairs[m.Task] = m.Stats.PairsOut
				if killArmed && !pendingKill && sched.resolvedCount >= o.KillAfterMapDone {
					killArmed = false
					pendingKill = true
					// The kill hook runs off-loop: it closes the victim's
					// coordinator link, which comes back as this loop's
					// death event.
					go kill(o.KillWorker)
				}
			}
			fill()
			maybeReduce()
		case mMapFailed:
			m, err := decodeTaskFail(ev.payload)
			if err != nil {
				fail(err)
				continue
			}
			ws[ev.w].outstanding--
			if end := assignSpans[attemptKey{m.Task, m.Attempt}]; end != nil {
				end()
				delete(assignSpans, attemptKey{m.Task, m.Attempt})
			}
			if o.Journal != nil {
				o.Journal.Info("map-retry", "task", m.Task, "attempt", m.Attempt, "worker", ev.w, "reason", m.Reason)
			}
			if err := sched.fail(m.Task, m.Attempt, ev.w, alive); err != nil {
				fail(err)
				continue
			}
			fill()
		case mReduceDone:
			m, err := decodeReduceDone(ev.payload)
			if err != nil {
				fail(err)
				continue
			}
			pairs, err := kv.Unmarshal(m.Output)
			if err != nil {
				fail(fmt.Errorf("dist: partition %d output: %w", m.Partition, err))
				continue
			}
			outputs[m.Partition] = pairs
			res.OutputPairs += len(pairs)
			if end := reduceSpans[m.Partition]; end != nil {
				end()
				delete(reduceSpans, m.Partition)
			}
			reduceOutstanding--
			if reduceOutstanding == 0 {
				phase = phaseDone
				res.ReduceElapsed = time.Since(reduceStart)
				for _, cw := range ws {
					if cw.alive {
						cw.cc.send(frame{typ: mJobEnd})
					}
				}
				// Workers close their end after job-end; readers drain out.
			}
		case mReduceFailed:
			m, err := decodeTaskFail(ev.payload)
			if err == nil {
				err = fmt.Errorf("dist: reduce partition %d failed: %s", m.Task, m.Reason)
			}
			fail(err)
		default:
			fail(fmt.Errorf("dist: unexpected %s from worker %d", typeName(ev.typ), ev.w))
		}
	}

	if jobErr != nil {
		return nil, jobErr
	}
	for _, t := range interPairs {
		res.IntermediatePairs += t
	}
	res.MapRetries = sched.retries
	res.MapRecoveries = sched.recoveries
	res.MapElapsed = mapElapsed
	res.Total = time.Since(start)
	res.outputs = outputs

	// Merge the cluster's trace: the coordinator's own scheduling spans plus
	// every worker's span batch, rebased from the worker's epoch onto ours.
	// The rebase is (worker epoch − coordinator epoch) by the two wall
	// clocks, minus the estimated offset between those clocks — after which
	// a worker that booted with its clock an hour ahead still lands its
	// spans where they causally belong on the coordinator timeline.
	res.TraceID = traceID
	res.ClockOffsets = make(map[int]float64)
	res.ClockRTTs = make(map[int]float64)
	for i, cw := range ws {
		if off, rtt, ok := cw.clock.estimate(); ok {
			res.ClockOffsets[i] = off / 1e9
			res.ClockRTTs[i] = float64(rtt) / 1e9
		}
	}
	if o.Telemetry != nil && o.Telemetry.Spans != nil {
		for _, s := range ctr.spans() {
			o.Telemetry.Spans.Span(s)
		}
		coordEpoch := ctr.epoch.UnixNano()
		for _, b := range batches {
			var offNs float64
			if b.Node >= 0 && b.Node < n {
				if off, _, ok := ws[b.Node].clock.estimate(); ok {
					offNs = off
				}
			}
			delta := (float64(b.EpochUnixNano-coordEpoch) - offNs) / 1e9
			for _, s := range b.Spans {
				s.Start += delta
				s.End += delta
				o.Telemetry.Spans.Span(s)
			}
		}
	}
	return res, nil
}

// Serve runs a coordinator for one job at addr, waiting for o.Workers
// multi-process workers (cmd/distnode) to join. Loopback-only Options
// fields are ignored.
func Serve(addr string, o Options) (*Result, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator listen: %w", err)
	}
	defer ln.Close()
	return serve(ln, o, nil)
}
