package dist

import (
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// tcpPair returns both ends of one real loopback TCP connection.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	a, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-ch
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	t.Cleanup(func() { a.Close(); acc.c.Close() })
	return a, acc.c
}

func TestHeartbeatTimeoutDeclaresPeerDead(t *testing.T) {
	a, b := tcpPair(t)
	// Side A heartbeats so rarely the peer's timeout always fires first.
	ca := newConn(a, "a", Tuning{HeartbeatEvery: time.Hour, HeartbeatTimeout: time.Hour}, nil)
	defer ca.close()
	cb := newConn(b, "b", Tuning{HeartbeatEvery: time.Hour, HeartbeatTimeout: 100 * time.Millisecond}, nil)
	defer cb.close()

	done := make(chan error, 1)
	go func() {
		_, _, err := cb.recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("recv returned a frame from a silent peer")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("silent peer never timed out")
	}
}

func TestSendWindowBackpressure(t *testing.T) {
	a, b := tcpPair(t)
	// Tiny window, receiver not reading: after the window fills (plus
	// whatever the kernel socket buffers swallow), bulk sends must block.
	tun := Tuning{SendWindow: 4 << 10, HeartbeatEvery: time.Hour, HeartbeatTimeout: time.Hour}
	ca := newConn(a, "a", tun, nil)
	defer ca.close()
	cb := newConn(b, "b", tun, nil)
	defer cb.close()

	payload := make([]byte, 8<<10) // each frame alone overflows the window
	var sent atomic.Int64
	go func() {
		for i := 0; i < 1000; i++ {
			ca.send(frame{typ: mRunBatch, payload: payload, bulk: true})
			sent.Add(1)
		}
	}()

	// The sender must wedge well short of 1000 frames: the window admits
	// one oversized frame at a time and the peer drains nothing.
	deadline := time.Now().Add(2 * time.Second)
	var stalled int64
	for time.Now().Before(deadline) {
		n := sent.Load()
		time.Sleep(50 * time.Millisecond)
		if n == sent.Load() && n > 0 {
			stalled = n
			break
		}
	}
	if stalled == 0 || stalled >= 1000 {
		t.Fatalf("sender never stalled (sent %d)", sent.Load())
	}

	// A control frame must bypass the wedged window...
	ctrlSent := make(chan struct{})
	go func() {
		ca.send(frame{typ: mMark, payload: markMsg{Task: 9}.encode()})
		close(ctrlSent)
	}()
	select {
	case <-ctrlSent:
	case <-time.After(2 * time.Second):
		t.Fatal("control frame blocked behind the bulk window")
	}

	// ...and once the receiver drains, the sender must make progress again.
	go func() {
		for {
			if _, _, err := cb.recv(); err != nil {
				return
			}
		}
	}()
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sent.Load() > stalled {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sender made no progress after receiver drained (stuck at %d)", sent.Load())
}

func TestSealAccountsQueuedFramesAsLost(t *testing.T) {
	a, b := tcpPair(t)
	tun := Tuning{SendWindow: 1 << 30, HeartbeatEvery: time.Hour, HeartbeatTimeout: time.Hour}
	var lostRecords, lostBytes atomic.Int64
	onDrop := func(records, acct int64) {
		lostRecords.Add(records)
		lostBytes.Add(acct)
	}
	ca := newConn(a, "a", tun, onDrop)
	defer ca.close()

	// Stall the pump: the receiver reads nothing and the payloads exceed
	// socket buffering, so most frames stay queued.
	payload := make([]byte, 1<<20)
	const frames = 64
	for i := 0; i < frames; i++ {
		ca.send(frame{typ: mRunBatch, payload: payload, bulk: true, records: 10, acct: int64(len(payload))})
	}
	ca.seal()
	// Everything still queued at seal time must be accounted lost; at least
	// the frames beyond the socket buffer can't have been written.
	if lostRecords.Load() == 0 {
		t.Fatal("seal with a wedged pump accounted no loss")
	}
	if lostRecords.Load()%10 != 0 {
		t.Fatalf("lost records %d not a multiple of per-frame count", lostRecords.Load())
	}
	if lostBytes.Load() != (lostRecords.Load()/10)*int64(len(payload)) {
		t.Fatalf("lost bytes %d inconsistent with lost records %d", lostBytes.Load(), lostRecords.Load())
	}

	// sent = written + lost must balance: drain what did reach the wire.
	cb := newConn(b, "b", tun, nil)
	defer cb.close()
	var arrived int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			typ, _, err := cb.recv()
			if err != nil {
				return
			}
			if typ == mRunBatch {
				arrived++
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sealed connection never delivered FIN")
	}
	if got := arrived*10 + lostRecords.Load(); got != frames*10 {
		t.Fatalf("conservation broke: arrived %d + lost %d != sent %d",
			arrived*10, lostRecords.Load(), frames*10)
	}
}

func TestSendAfterCloseDropsWithAccounting(t *testing.T) {
	a, _ := tcpPair(t)
	var lost atomic.Int64
	ca := newConn(a, "a", Tuning{}, func(records, _ int64) { lost.Add(records) })
	ca.close()
	ca.send(frame{typ: mRunBatch, payload: []byte("x"), bulk: true, records: 7})
	if lost.Load() != 7 {
		t.Fatalf("post-close send accounted %d lost records, want 7", lost.Load())
	}
}

func TestShutdownFlushesQueuedFrames(t *testing.T) {
	a, b := tcpPair(t)
	tun := Tuning{HeartbeatEvery: time.Hour, HeartbeatTimeout: time.Hour}
	ca := newConn(a, "a", tun, nil)
	cb := newConn(b, "b", tun, nil)
	defer cb.close()

	const frames = 50
	for i := 0; i < frames; i++ {
		ca.send(frame{typ: mMark, payload: markMsg{Task: i}.encode()})
	}
	go ca.shutdown()

	var got int
	for got < frames {
		typ, _, err := cb.recv()
		if err != nil {
			t.Fatalf("after %d/%d frames: %v", got, frames, err)
		}
		if typ == mMark {
			got++
		}
	}
}
