package dist

import "sync"

// Fleet is a fixed pool of worker slots shared by many concurrent jobs —
// the resident service's unit of capacity. Each job acquires as many slots
// as it runs workers, holds them for the life of its loopback cluster, and
// releases them when the cluster quiesces; the pool never oversubscribes,
// so however many jobs a coordinator service admits, at most Total workers
// exist at once.
//
// Cluster state itself is job-scoped, not fleet-scoped: every RunLoopback
// call owns its listener, its kill table, its ledger and its workers, so
// two jobs running on slots from the same Fleet share nothing but the slot
// budget (see TestConcurrentJobsIndependentLedgers).
type Fleet struct {
	mu    sync.Mutex
	total int
	free  int
}

// NewFleet returns a pool of n worker slots (n < 1 is treated as 1).
func NewFleet(n int) *Fleet {
	if n < 1 {
		n = 1
	}
	return &Fleet{total: n, free: n}
}

// Total returns the pool's capacity.
func (f *Fleet) Total() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Resize changes the pool's capacity in place — the service's elastic
// scaling hook (n < 1 is treated as 1). Growing makes the new slots
// acquirable immediately. Shrinking retires free slots first; when the new
// total is below what is currently in use, Free goes negative and no
// acquisition succeeds until running jobs release the deficit — nothing
// running is ever preempted. Returns the new total.
func (f *Fleet) Resize(n int) int {
	if n < 1 {
		n = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.free += n - f.total
	f.total = n
	return f.total
}

// Free returns the currently unclaimed slot count.
func (f *Fleet) Free() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.free
}

// TryAcquire claims n slots if they are all free right now, without
// blocking. Callers integrate their own wait/wakeup policy (the job
// service re-picks its dispatch candidate on every scheduler wakeup, so a
// blocking acquire here would pin it to a stale choice).
func (f *Fleet) TryAcquire(n int) bool {
	if n < 1 {
		panic("dist: Fleet.TryAcquire of non-positive slot count")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if n > f.free {
		return false
	}
	f.free -= n
	return true
}

// Release returns n slots to the pool. Releasing more than was acquired is
// an accounting bug and panics.
func (f *Fleet) Release(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.free += n
	if f.free > f.total {
		panic("dist: Fleet.Release of slots never acquired")
	}
}
