package dist

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"glasswing/internal/core"
)

// The coordinator checkpoint journal is an append-only file of fsynced
// records; a restarted coordinator replays it and resumes the job instead
// of failing it. Each record is
//
//	[uvarint body length][body][4-byte little-endian CRC32(body)]
//
// where the body is a type byte followed by the same uvarint/byte-string
// encoding the wire uses. The journal is written write-ahead: a record is
// durable before the state change it describes is applied or broadcast, so
// replaying a prefix always yields a state the cluster is at or ahead of —
// never behind. Replay is strict: any corruption (bad CRC, truncation,
// duplicate resolution, regressed epoch, identity mismatch) refuses the
// resume with a "resume refused" error rather than risking a divergent one.

// Journal record types.
const (
	jrJobStart   byte = 1 // job identity: app, tuning-relevant spec, blocks digest, trace id
	jrMembership byte = 2 // epoch, homes, alive set, per-task attempts, churn totals
	jrMapDone    byte = 3 // one task resolved: attempt + winning attempt's stats
	jrReduceDone byte = 4 // one partition's output accepted: attempt + marshaled pairs
	jrNamespace  byte = 5 // block-store namespace: mode, replication, formation width
)

// errResumeRefused prefixes every replay failure.
const resumeRefused = "dist: resume refused"

// journal is the coordinator-side writer. Not self-locking: only the
// coordinator's event loop appends.
type journal struct{ f *os.File }

// createJournal opens a fresh journal, truncating any previous run's file.
func createJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: journal: %w", err)
	}
	return &journal{f: f}, nil
}

// openJournalAppend reopens an existing journal for continuation records
// after a successful replay.
func openJournalAppend(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: journal: %w", err)
	}
	return &journal{f: f}, nil
}

// append frames, writes, and fsyncs one record body. The job fails rather
// than runs unjournaled if the disk write does.
func (j *journal) append(body []byte) error {
	var rec enc
	rec.bytes(body)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	rec.buf = append(rec.buf, crc[:]...)
	if _, err := j.f.Write(rec.buf); err != nil {
		return fmt.Errorf("dist: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("dist: journal sync: %w", err)
	}
	return nil
}

func (j *journal) close() {
	if j != nil && j.f != nil {
		j.f.Close()
	}
}

// blocksDigest fingerprints the job input so a resume against different
// blocks is refused instead of silently recomputing a different answer.
func blocksDigest(blocks [][]byte) [32]byte {
	h := sha256.New()
	var n [binary.MaxVarintLen64]byte
	for _, b := range blocks {
		h.Write(n[:binary.PutUvarint(n[:], uint64(len(b)))])
		h.Write(b)
	}
	var d [32]byte
	h.Sum(d[:0])
	return d
}

func (j *journal) jobStart(job Job, traceID uint64, nTasks int, digest [32]byte) error {
	var e enc
	e.buf = append(e.buf, jrJobStart)
	e.str(job.App.Name)
	e.bytes(job.App.Params)
	e.i(int64(job.Partitions))
	e.u(uint64(job.Collector))
	e.bool(job.UseCombiner)
	e.bool(job.Compress)
	e.i(int64(job.MaxAttempts))
	e.i(int64(nTasks))
	e.u(traceID)
	e.bytes(digest[:])
	return j.append(e.buf)
}

// namespace journals the block-store placement inputs. Placement is a pure
// function of (tasks, width, replication), so the record carries the inputs
// rather than the full block→holders map; a resumed coordinator recomputes
// the identical namespace the workers' disks hold.
func (j *journal) namespace(mode string, repl, width int) error {
	var e enc
	e.buf = append(e.buf, jrNamespace)
	e.str(mode)
	e.i(int64(repl))
	e.i(int64(width))
	return j.append(e.buf)
}

func (j *journal) membership(epoch int, homes []int, alive []bool, attempt []int, joined, drained, lost int) error {
	var e enc
	e.buf = append(e.buf, jrMembership)
	e.i(int64(epoch))
	e.u(uint64(len(homes)))
	for _, h := range homes {
		e.i(int64(h))
	}
	e.u(uint64(len(alive)))
	for _, a := range alive {
		e.bool(a)
	}
	e.u(uint64(len(attempt)))
	for _, a := range attempt {
		e.i(int64(a))
	}
	e.i(int64(joined))
	e.i(int64(drained))
	e.i(int64(lost))
	return j.append(e.buf)
}

func (j *journal) mapDone(task, attempt int, st attemptStats) error {
	var e enc
	e.buf = append(e.buf, jrMapDone)
	e.i(int64(task))
	e.i(int64(attempt))
	e.i(st.RecordsIn)
	e.i(st.PairsOut)
	e.i(st.PartRecords)
	e.i(st.PartRuns)
	e.i(st.PartRaw)
	e.i(st.PartStored)
	return j.append(e.buf)
}

func (j *journal) reduceDone(partition, attempt int, recordsIn, groupsIn int64, output []byte) error {
	var e enc
	e.buf = append(e.buf, jrReduceDone)
	e.i(int64(partition))
	e.i(int64(attempt))
	e.i(recordsIn)
	e.i(groupsIn)
	e.bytes(output)
	return j.append(e.buf)
}

// resumeState is everything a replayed journal reconstructs.
type resumeState struct {
	job     Job
	traceID uint64
	nTasks  int
	digest  [32]byte

	epoch   int
	homes   []int
	alive   []bool
	attempt []int
	joined  int
	drained int
	lost    int

	bsMode  string // block-store mode ("" = off)
	bsRepl  int
	bsWidth int // cluster width the placement was computed at

	resolved []bool
	stats    map[int]attemptStats
	outputs  map[int][]byte // partition → marshaled final pairs
	reduceAt map[int]int    // partition → attempt the output resolved at
	records  map[int]int64  // partition → records the accepted reduce consumed
}

// replayJournal decodes and validates a journal image. Every anomaly —
// framing damage, CRC mismatch, semantic impossibility — refuses the
// resume; replay never guesses.
func replayJournal(data []byte) (*resumeState, error) {
	refuse := func(format string, args ...any) (*resumeState, error) {
		return nil, fmt.Errorf(resumeRefused+": "+format, args...)
	}
	rs := &resumeState{
		stats:    make(map[int]attemptStats),
		outputs:  make(map[int][]byte),
		reduceAt: make(map[int]int),
		records:  make(map[int]int64),
	}
	resolvedAt := make(map[int]int) // task → attempt it was journaled resolved at
	sawStart, sawMembership := false, false
	rest := data
	for len(rest) > 0 {
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || n == 0 || n > uint64(len(rest)) {
			return refuse("damaged record length")
		}
		rest = rest[sz:]
		if uint64(len(rest)) < n+4 {
			return refuse("truncated record")
		}
		body := rest[:n]
		want := binary.LittleEndian.Uint32(rest[n : n+4])
		rest = rest[n+4:]
		if crc32.ChecksumIEEE(body) != want {
			return refuse("record checksum mismatch")
		}
		typ, d := body[0], dec{buf: body[1:]}
		if !sawStart && typ != jrJobStart {
			return refuse("journal does not begin with a job-start record")
		}
		switch typ {
		case jrJobStart:
			if sawStart {
				return refuse("duplicate job-start record")
			}
			sawStart = true
			rs.job.App.Name = d.str()
			rs.job.App.Params = append([]byte(nil), d.bytes()...)
			rs.job.Partitions = int(d.i())
			rs.job.Collector = core.CollectorKind(d.u())
			rs.job.UseCombiner = d.bool()
			rs.job.Compress = d.bool()
			rs.job.MaxAttempts = int(d.i())
			rs.nTasks = int(d.i())
			rs.traceID = d.u()
			dg := d.bytes()
			if err := d.fin("journal job-start"); err != nil {
				return refuse("%v", err)
			}
			if len(dg) != 32 || rs.nTasks < 0 || rs.nTasks > maxFrame ||
				rs.job.Partitions <= 0 || rs.job.Partitions > maxFrame {
				return refuse("implausible job-start record")
			}
			copy(rs.digest[:], dg)
			rs.resolved = make([]bool, rs.nTasks)
			rs.attempt = make([]int, rs.nTasks)
		case jrMembership:
			epoch := int(d.i())
			nh := d.u()
			if nh > uint64(len(body)) {
				return refuse("implausible membership record")
			}
			homes := make([]int, 0, nh)
			for i := uint64(0); i < nh && d.err == nil; i++ {
				homes = append(homes, int(d.i()))
			}
			na := d.u()
			if na > uint64(len(body)) {
				return refuse("implausible membership record")
			}
			alive := make([]bool, 0, na)
			for i := uint64(0); i < na && d.err == nil; i++ {
				alive = append(alive, d.bool())
			}
			nt := d.u()
			if nt > uint64(len(body)) {
				return refuse("implausible membership record")
			}
			attempt := make([]int, 0, nt)
			for i := uint64(0); i < nt && d.err == nil; i++ {
				attempt = append(attempt, int(d.i()))
			}
			joined, drained, lost := int(d.i()), int(d.i()), int(d.i())
			if err := d.fin("journal membership"); err != nil {
				return refuse("%v", err)
			}
			if epoch < 0 || (sawMembership && epoch <= rs.epoch) {
				return refuse("membership epoch regressed (%d after %d)", epoch, rs.epoch)
			}
			if len(homes) != rs.job.Partitions || len(attempt) != rs.nTasks || len(alive) == 0 {
				return refuse("membership record shape mismatch")
			}
			for _, a := range attempt {
				if a < 0 {
					return refuse("negative attempt in membership record")
				}
			}
			for _, h := range homes {
				if h < 0 || h >= len(alive) || !alive[h] {
					return refuse("partition homed on a non-live worker")
				}
			}
			if joined < rs.joined || drained < rs.drained || lost < rs.lost {
				return refuse("membership churn totals regressed")
			}
			sawMembership = true
			rs.epoch, rs.homes, rs.alive, rs.attempt = epoch, homes, alive, attempt
			rs.joined, rs.drained, rs.lost = joined, drained, lost
			// A death re-queues resolved tasks under a bumped attempt (their
			// shuffle output died with the worker). A membership record whose
			// attempt supersedes a task's journaled resolution un-resolves it.
			for t := 0; t < rs.nTasks; t++ {
				if rs.resolved[t] && resolvedAt[t] < rs.attempt[t] {
					rs.resolved[t] = false
				}
			}
		case jrMapDone:
			task, attempt := int(d.i()), int(d.i())
			st := attemptStats{
				RecordsIn: d.i(), PairsOut: d.i(),
				PartRecords: d.i(), PartRuns: d.i(), PartRaw: d.i(), PartStored: d.i(),
			}
			if err := d.fin("journal map-done"); err != nil {
				return refuse("%v", err)
			}
			if task < 0 || task >= rs.nTasks {
				return refuse("map-done for unknown task %d", task)
			}
			if rs.resolved[task] {
				return refuse("duplicate resolution of task %d", task)
			}
			if attempt < rs.attempt[task] {
				return refuse("map-done for task %d at stale attempt %d (current %d)", task, attempt, rs.attempt[task])
			}
			rs.resolved[task] = true
			rs.attempt[task] = attempt
			rs.stats[task] = st
			resolvedAt[task] = attempt
		case jrNamespace:
			mode := d.str()
			repl, width := int(d.i()), int(d.i())
			if err := d.fin("journal namespace"); err != nil {
				return refuse("%v", err)
			}
			if (mode != "local" && mode != "remote") || repl <= 0 || width <= 0 || repl > width {
				return refuse("implausible namespace record")
			}
			if rs.bsMode != "" {
				return refuse("duplicate namespace record")
			}
			rs.bsMode, rs.bsRepl, rs.bsWidth = mode, repl, width
		case jrReduceDone:
			part, attempt := int(d.i()), int(d.i())
			recs, _ := d.i(), d.i() // groupsIn is informational; records feed settlement
			out := append([]byte(nil), d.bytes()...)
			if err := d.fin("journal reduce-done"); err != nil {
				return refuse("%v", err)
			}
			if part < 0 || part >= rs.job.Partitions || attempt < 0 || recs < 0 {
				return refuse("reduce-done for unknown partition %d", part)
			}
			if _, dup := rs.outputs[part]; dup {
				return refuse("duplicate output for partition %d", part)
			}
			rs.outputs[part] = out
			rs.reduceAt[part] = attempt
			rs.records[part] = recs
		default:
			return refuse("unknown record type %d", typ)
		}
	}
	if !sawStart {
		return refuse("journal is empty")
	}
	if !sawMembership {
		return refuse("journal has no membership record")
	}
	return rs, nil
}

// validateResume checks a replayed journal against the options the resumed
// coordinator was started with: the job identity and input must match what
// the journal was written for.
func (rs *resumeState) validateResume(o *Options) error {
	refuse := func(format string, args ...any) error {
		return fmt.Errorf(resumeRefused+": "+format, args...)
	}
	switch {
	case rs.job.App.Name != o.Job.App.Name:
		return refuse("journal is for app %q, not %q", rs.job.App.Name, o.Job.App.Name)
	case string(rs.job.App.Params) != string(o.Job.App.Params):
		return refuse("app params differ from the journaled job")
	case rs.job.Partitions != o.Job.Partitions:
		return refuse("journaled %d partitions, options say %d", rs.job.Partitions, o.Job.Partitions)
	case rs.job.Collector != o.Job.Collector ||
		rs.job.UseCombiner != o.Job.UseCombiner ||
		rs.job.Compress != o.Job.Compress ||
		rs.job.MaxAttempts != o.Job.MaxAttempts:
		return refuse("job spec differs from the journaled job")
	case rs.nTasks != len(o.Blocks):
		return refuse("journaled %d input blocks, options carry %d", rs.nTasks, len(o.Blocks))
	case rs.digest != blocksDigest(o.Blocks):
		return refuse("input blocks differ from the journaled job")
	case rs.bsMode != o.Blockstore:
		return refuse("journaled blockstore mode %q, options say %q", rs.bsMode, o.Blockstore)
	}
	return nil
}
