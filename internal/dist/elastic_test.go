package dist

import (
	"fmt"
	"path/filepath"
	"testing"

	"glasswing/internal/apps"
	"glasswing/internal/core"
	"glasswing/internal/kv"
	"glasswing/internal/obs"
)

// elasticWC builds a WC job with enough tasks that elastic events scheduled
// against map progress have work left to reshape.
func elasticWC(workers int, tel *obs.Telemetry) (Options, map[string]uint64) {
	data, want := apps.WCData(29, 96<<10, 1200)
	return Options{
		Job:        Job{App: AppSpec{Name: "WC"}, Partitions: 6, Collector: core.HashTable},
		Workers:    workers,
		Blocks:     SplitBlocks(data, 8<<10, 0), // ~12 tasks
		Telemetry:  tel,
		NewApp:     testResolver(apps.WordCount, nil),
		KillWorker: -1,
	}, want
}

func wcDigest(t *testing.T, res *Result) string {
	t.Helper()
	out := res.Output()
	kv.SortPairs(out)
	return fmt.Sprintf("%x", kv.Marshal(out))
}

// checkWire asserts the wire ledger balances exactly: sent == recv + lost.
func checkWire(t *testing.T, reg *obs.Registry, wantLoss bool) {
	t.Helper()
	sent, recv, lost, bsent, brecv, blost := netCounters(reg)
	if sent != recv+lost || bsent != brecv+blost {
		t.Fatalf("wire ledger imbalance: sent %d/%dB, recv %d/%dB, lost %d/%dB",
			sent, bsent, recv, brecv, lost, blost)
	}
	if !wantLoss && (lost != 0 || blost != 0) {
		t.Fatalf("unexpected loss: %d records, %d bytes", lost, blost)
	}
}

// checkHandoff asserts handed-off shuffle data balances: every record a
// drained worker shipped was adopted by the partition's new home.
func checkHandoff(t *testing.T, reg *obs.Registry) {
	t.Helper()
	out := reg.Counter("conserv_store_handoff_out_records_total").Value()
	in := reg.Counter("conserv_store_handoff_in_records_total").Value()
	if out != in {
		t.Fatalf("handoff leak: %d records out, %d adopted", out, in)
	}
}

func TestElasticJoin(t *testing.T) {
	// Reference digest from a static run.
	oRef, want := elasticWC(2, nil)
	ref, err := RunLoopback(oRef)
	if err != nil {
		t.Fatal(err)
	}
	refDig := wcDigest(t, ref)

	tel := obs.NewTelemetry()
	o, _ := elasticWC(2, tel)
	o.Elastic = []ElasticEvent{{Kind: "join", AfterMapDone: 2}}
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if res.WorkersJoined != 1 {
		t.Fatalf("WorkersJoined = %d, want 1", res.WorkersJoined)
	}
	if dig := wcDigest(t, res); dig != refDig {
		t.Fatal("join run output diverged from static run")
	}
	checkWire(t, tel.Metrics, false)
	checkHandoff(t, tel.Metrics)
}

func TestElasticDrain(t *testing.T) {
	oRef, want := elasticWC(3, nil)
	ref, err := RunLoopback(oRef)
	if err != nil {
		t.Fatal(err)
	}
	refDig := wcDigest(t, ref)

	tel := obs.NewTelemetry()
	o, _ := elasticWC(3, tel)
	o.Elastic = []ElasticEvent{{Kind: "drain", Worker: 0, AfterMapDone: 3}}
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if res.WorkersDrained != 1 {
		t.Fatalf("WorkersDrained = %d, want 1", res.WorkersDrained)
	}
	if res.WorkersLost != 0 {
		t.Fatalf("graceful drain counted as loss: WorkersLost = %d", res.WorkersLost)
	}
	if dig := wcDigest(t, res); dig != refDig {
		t.Fatal("drain run output diverged from static run")
	}
	// A graceful drain must lose nothing: staged shuffle flushes before the
	// handoff, and handed-off records are adopted exactly.
	checkWire(t, tel.Metrics, false)
	checkHandoff(t, tel.Metrics)
}

func TestReduceKillRecovers(t *testing.T) {
	// A worker killed during the reduce phase used to fail the job; now the
	// coordinator cancels the wave, re-executes what died, and finishes.
	oRef, want := elasticWC(3, nil)
	ref, err := RunLoopback(oRef)
	if err != nil {
		t.Fatal(err)
	}
	refDig := wcDigest(t, ref)

	tel := obs.NewTelemetry()
	o, _ := elasticWC(3, tel)
	o.Elastic = []ElasticEvent{{Kind: "kill", Worker: 1, AfterReduceDone: 1}}
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if res.WorkersLost != 1 {
		t.Fatalf("WorkersLost = %d, want 1", res.WorkersLost)
	}
	if dig := wcDigest(t, res); dig != refDig {
		t.Fatal("reduce-kill run output diverged from static run")
	}
	checkWire(t, tel.Metrics, true)
}

func TestCoordinatorRestartResume(t *testing.T) {
	oRef, want := elasticWC(3, nil)
	ref, err := RunLoopback(oRef)
	if err != nil {
		t.Fatal(err)
	}
	refDig := wcDigest(t, ref)

	tel := obs.NewTelemetry()
	o, _ := elasticWC(3, tel)
	o.JournalPath = filepath.Join(t.TempDir(), "coord.journal")
	o.Elastic = []ElasticEvent{{Kind: "restart", AfterMapDone: 4}}
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("restarted run did not report Resumed")
	}
	if dig := wcDigest(t, res); dig != refDig {
		t.Fatal("resumed run output diverged from static run")
	}
	checkWire(t, tel.Metrics, false)
}

func TestRestartDuringReduce(t *testing.T) {
	oRef, want := elasticWC(3, nil)
	ref, err := RunLoopback(oRef)
	if err != nil {
		t.Fatal(err)
	}
	refDig := wcDigest(t, ref)

	tel := obs.NewTelemetry()
	o, _ := elasticWC(3, tel)
	o.JournalPath = filepath.Join(t.TempDir(), "coord.journal")
	o.Elastic = []ElasticEvent{{Kind: "restart", AfterReduceDone: 2}}
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("restarted run did not report Resumed")
	}
	// Partitions accepted before the crash keep their journaled output; the
	// rest re-reduce. Either way the digest is the static run's.
	if dig := wcDigest(t, res); dig != refDig {
		t.Fatal("mid-reduce resume output diverged from static run")
	}
}

func TestElasticChaosCombined(t *testing.T) {
	// The full gauntlet on one job: grow 3→5, kill one, drain two, restart
	// the coordinator, and still produce the static run's bytes with an
	// exactly balanced ledger.
	oRef, want := elasticWC(3, nil)
	ref, err := RunLoopback(oRef)
	if err != nil {
		t.Fatal(err)
	}
	refDig := wcDigest(t, ref)

	tel := obs.NewTelemetry()
	o, _ := elasticWC(3, tel)
	o.JournalPath = filepath.Join(t.TempDir(), "coord.journal")
	o.Elastic = []ElasticEvent{
		{Kind: "join", AfterMapDone: 2},
		{Kind: "join", AfterMapDone: 3},
		{Kind: "kill", Worker: 1, AfterMapDone: 6},
		{Kind: "drain", Worker: 0, AfterMapDone: 8},
		{Kind: "restart", AfterReduceDone: 1},
	}
	res, err := RunLoopback(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := apps.VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	if res.WorkersJoined != 2 || res.WorkersLost != 1 || res.WorkersDrained != 1 || !res.Resumed {
		t.Fatalf("churn accounting: joined=%d lost=%d drained=%d resumed=%v",
			res.WorkersJoined, res.WorkersLost, res.WorkersDrained, res.Resumed)
	}
	if dig := wcDigest(t, res); dig != refDig {
		t.Fatal("chaos run output diverged from static run")
	}
	checkWire(t, tel.Metrics, true)
}

func TestResumeRefusedOnSpecMismatch(t *testing.T) {
	// Run a job to completion with a journal, then try to resume it as a
	// different job: the coordinator must refuse, not diverge.
	o, _ := elasticWC(2, nil)
	o.JournalPath = filepath.Join(t.TempDir(), "coord.journal")
	if _, err := RunLoopback(o); err != nil {
		t.Fatal(err)
	}
	o2, _ := elasticWC(2, nil)
	o2.JournalPath = o.JournalPath
	o2.Resume = true
	o2.Job.Partitions = 9 // spec mismatch
	_, err := RunLoopback(o2)
	if err == nil {
		t.Fatal("resume with mismatched job spec succeeded")
	}
}
