package dist

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"glasswing/internal/core"
	"glasswing/internal/obs"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("glasswing"), 1000)}
	for i, p := range payloads {
		if err := writeFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: type %d len %d", i, typ, len(got))
		}
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, mRunBatch, []byte("some payload"))
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		if _, _, err := readFrame(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("truncation at %d read a frame", cut)
		}
	}
	// Clean EOF between frames is a plain EOF, not a framing error.
	if _, _, err := readFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

func TestReadFrameImplausibleLength(t *testing.T) {
	for _, hdr := range [][]byte{
		{0, 0, 0, 0},             // zero length: no type byte
		{0xff, 0xff, 0xff, 0xff}, // 4 GiB: beyond maxFrame
	} {
		if _, _, err := readFrame(bytes.NewReader(hdr)); err == nil {
			t.Fatalf("header %v accepted", hdr)
		}
	}
}

func TestMessageRoundTrips(t *testing.T) {
	checks := []struct {
		name   string
		msg    any
		decode func([]byte) (any, error)
		enc    []byte
	}{
		{"hello", helloMsg{ListenAddr: "127.0.0.1:7777"},
			func(p []byte) (any, error) { return decodeHello(p) },
			helloMsg{ListenAddr: "127.0.0.1:7777"}.encode()},
		{"welcome", welcomeMsg{WorkerID: 2, Workers: 5},
			func(p []byte) (any, error) { return decodeWelcome(p) },
			welcomeMsg{WorkerID: 2, Workers: 5}.encode()},
		{"job-start", jobStartMsg{
			TraceID: 0xfeedbeefcafe,
			Job: Job{
				App:         AppSpec{Name: "wc", Params: []byte{1, 2, 3}},
				Partitions:  7,
				Collector:   core.BufferPool,
				UseCombiner: true,
				Compress:    true,
				MaxAttempts: 3,
			},
			Peers: []string{"a:1", "b:2"},
			Homes: []int{0, 1, 0, 1, 0, 1, 0},
		},
			func(p []byte) (any, error) { return decodeJobStart(p) },
			jobStartMsg{
				TraceID: 0xfeedbeefcafe,
				Job: Job{
					App:         AppSpec{Name: "wc", Params: []byte{1, 2, 3}},
					Partitions:  7,
					Collector:   core.BufferPool,
					UseCombiner: true,
					Compress:    true,
					MaxAttempts: 3,
				},
				Peers: []string{"a:1", "b:2"},
				Homes: []int{0, 1, 0, 1, 0, 1, 0},
			}.encode()},
		{"map-task", mapTaskMsg{Task: 4, Attempt: 2, SpanID: 1<<48 | 9, Block: []byte("block data")},
			func(p []byte) (any, error) { return decodeMapTask(p) },
			mapTaskMsg{Task: 4, Attempt: 2, SpanID: 1<<48 | 9, Block: []byte("block data")}.encode()},
		{"map-done", mapDoneMsg{Task: 1, Attempt: 1, Stats: attemptStats{
			RecordsIn: 10, PairsOut: 20, PartRecords: 20, PartRuns: 3, PartRaw: 400, PartStored: 300,
		}},
			func(p []byte) (any, error) { return decodeMapDone(p) },
			mapDoneMsg{Task: 1, Attempt: 1, Stats: attemptStats{
				RecordsIn: 10, PairsOut: 20, PartRecords: 20, PartRuns: 3, PartRaw: 400, PartStored: 300,
			}}.encode()},
		{"task-fail", taskFailMsg{Task: 2, Attempt: 0, Reason: "injected"},
			func(p []byte) (any, error) { return decodeTaskFail(p) },
			taskFailMsg{Task: 2, Attempt: 0, Reason: "injected"}.encode()},
		{"run-batch", runBatchMsg{TraceID: 42, SendSpan: 2<<48 | 3, Entries: []runEntry{
			{Task: 3, Attempt: 1, Partition: 2, Records: 9, RawBytes: 123, Blob: []byte{9, 8, 7}},
			{Task: 3, Attempt: 1, Partition: 5, Records: 1, RawBytes: 11, Blob: []byte{1}},
		}},
			func(p []byte) (any, error) { return decodeRunBatch(p) },
			runBatchMsg{TraceID: 42, SendSpan: 2<<48 | 3, Entries: []runEntry{
				{Task: 3, Attempt: 1, Partition: 2, Records: 9, RawBytes: 123, Blob: []byte{9, 8, 7}},
				{Task: 3, Attempt: 1, Partition: 5, Records: 1, RawBytes: 11, Blob: []byte{1}},
			}}.encode()},
		{"run-batch-deflate", runBatchMsg{Compressed: true, Entries: []runEntry{
			{Task: 1, Attempt: 0, Partition: 0, Records: 4, RawBytes: 64, Blob: bytes.Repeat([]byte("run"), 40)},
		}},
			func(p []byte) (any, error) { return decodeRunBatch(p) },
			runBatchMsg{Compressed: true, Entries: []runEntry{
				{Task: 1, Attempt: 0, Partition: 0, Records: 4, RawBytes: 64, Blob: bytes.Repeat([]byte("run"), 40)},
			}}.encode()},
		{"mark", markMsg{Task: 6, Attempt: 2},
			func(p []byte) (any, error) { return decodeMark(p) },
			markMsg{Task: 6, Attempt: 2}.encode()},
		{"reduce-task", reduceTaskMsg{Partition: 3, Attempt: 1, SpanID: 77},
			func(p []byte) (any, error) { return decodeReduceTask(p) },
			reduceTaskMsg{Partition: 3, Attempt: 1, SpanID: 77}.encode()},
		{"reduce-done", reduceDoneMsg{Partition: 1, Attempt: 0, RecordsIn: 55, GroupsIn: 11, Output: []byte("pairs")},
			func(p []byte) (any, error) { return decodeReduceDone(p) },
			reduceDoneMsg{Partition: 1, Attempt: 0, RecordsIn: 55, GroupsIn: 11, Output: []byte("pairs")}.encode()},
		{"worker-dead", workerDeadMsg{Dead: 1, Homes: []int{0, 2, 0, 2}},
			func(p []byte) (any, error) { return decodeWorkerDead(p) },
			workerDeadMsg{Dead: 1, Homes: []int{0, 2, 0, 2}}.encode()},
		{"peer-hello", peerHelloMsg{WorkerID: 4},
			func(p []byte) (any, error) { return decodePeerHello(p) },
			peerHelloMsg{WorkerID: 4}.encode()},
		{"span-batch", spanBatchMsg{
			TraceID: 0xabc, Node: 2, EpochUnixNano: 1700000000123456789,
			Spans: []obs.Span{
				{Node: 2, Stage: "map/kernel", Start: 0.001, End: 0.025, ID: 2<<48 | 1, Parent: 1 << 48},
				{Node: 2, Stage: "net/send", Start: 0.010, End: 0.030, ID: 2<<48 | 2, Parent: 2<<48 | 1},
			},
		},
			func(p []byte) (any, error) { return decodeSpanBatch(p) },
			spanBatchMsg{
				TraceID: 0xabc, Node: 2, EpochUnixNano: 1700000000123456789,
				Spans: []obs.Span{
					{Node: 2, Stage: "map/kernel", Start: 0.001, End: 0.025, ID: 2<<48 | 1, Parent: 1 << 48},
					{Node: 2, Stage: "net/send", Start: 0.010, End: 0.030, ID: 2<<48 | 2, Parent: 2<<48 | 1},
				},
			}.encode()},
		{"heartbeat-probe", hbMsg{Kind: hbProbe, T1: 1234567890},
			func(p []byte) (any, error) { return decodeHB(p) },
			hbMsg{Kind: hbProbe, T1: 1234567890}.encode()},
		{"heartbeat-reply", hbMsg{Kind: hbReply, T1: 10, T2: -20, T3: 30},
			func(p []byte) (any, error) { return decodeHB(p) },
			hbMsg{Kind: hbReply, T1: 10, T2: -20, T3: 30}.encode()},
	}
	for _, c := range checks {
		got, err := c.decode(c.enc)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !reflect.DeepEqual(got, c.msg) {
			t.Fatalf("%s: round trip:\n got %+v\nwant %+v", c.name, got, c.msg)
		}
	}
}

// TestDecodeCorrupt feeds every decoder truncated and trailing-garbage
// payloads: all must error, none may panic.
func TestDecodeCorrupt(t *testing.T) {
	decoders := map[string]func([]byte) error{
		"hello":       func(p []byte) error { _, err := decodeHello(p); return err },
		"welcome":     func(p []byte) error { _, err := decodeWelcome(p); return err },
		"job-start":   func(p []byte) error { _, err := decodeJobStart(p); return err },
		"map-task":    func(p []byte) error { _, err := decodeMapTask(p); return err },
		"map-done":    func(p []byte) error { _, err := decodeMapDone(p); return err },
		"task-fail":   func(p []byte) error { _, err := decodeTaskFail(p); return err },
		"run-batch":   func(p []byte) error { _, err := decodeRunBatch(p); return err },
		"mark":        func(p []byte) error { _, err := decodeMark(p); return err },
		"reduce-task": func(p []byte) error { _, err := decodeReduceTask(p); return err },
		"reduce-done": func(p []byte) error { _, err := decodeReduceDone(p); return err },
		"worker-dead": func(p []byte) error { _, err := decodeWorkerDead(p); return err },
		"peer-hello":  func(p []byte) error { _, err := decodePeerHello(p); return err },
		"span-batch":  func(p []byte) error { _, err := decodeSpanBatch(p); return err },
		"heartbeat":   func(p []byte) error { _, err := decodeHB(p); return err },
	}
	samples := map[string][]byte{
		"hello":       helloMsg{ListenAddr: "127.0.0.1:1"}.encode(),
		"welcome":     welcomeMsg{WorkerID: 1, Workers: 3}.encode(),
		"job-start":   jobStartMsg{Job: Job{App: AppSpec{Name: "wc"}, Partitions: 2}, Peers: []string{"x"}, Homes: []int{0, 1}}.encode(),
		"map-task":    mapTaskMsg{Task: 1, Attempt: 0, Block: []byte("abc")}.encode(),
		"map-done":    mapDoneMsg{Task: 1, Stats: attemptStats{RecordsIn: 5}}.encode(),
		"task-fail":   taskFailMsg{Task: 1, Reason: "r"}.encode(),
		"run-batch":   runBatchMsg{Entries: []runEntry{{Task: 1, Records: 2, Blob: []byte("bb")}}}.encode(),
		"mark":        markMsg{Task: 1, Attempt: 1}.encode(),
		"reduce-task": reduceTaskMsg{Partition: 1}.encode(),
		"reduce-done": reduceDoneMsg{Partition: 1, Output: []byte("oo")}.encode(),
		"worker-dead": workerDeadMsg{Dead: 0, Homes: []int{1, 1}}.encode(),
		"peer-hello":  peerHelloMsg{WorkerID: 1}.encode(),
		"span-batch": spanBatchMsg{TraceID: 1, Node: 0, EpochUnixNano: 99,
			Spans: []obs.Span{{Stage: "reduce", Start: 1, End: 2, ID: 3}}}.encode(),
		"heartbeat": hbMsg{Kind: hbReply, T1: 1, T2: 2, T3: 3}.encode(),
	}
	for name, dec := range decoders {
		good := samples[name]
		for cut := 0; cut < len(good); cut++ {
			if err := dec(good[:cut]); err == nil && cut != len(good) {
				// Some prefixes happen to decode (uvarints are dense); the
				// requirement is no panic and trailing-byte detection below.
				_ = err
			}
		}
		if err := dec(append(append([]byte(nil), good...), 0xAA)); err == nil {
			t.Fatalf("%s: trailing garbage accepted", name)
		}
	}
}
