package dist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"glasswing/internal/kv"
)

// attemptKey identifies one execution of one map task.
type attemptKey struct{ task, attempt int }

// committedRun is one run the store has accepted, tagged with the task that
// produced it so a re-homed partition can be handed to its new owner with
// enough identity for destination-side dedup. A run is either resident
// (run != nil) or spilled to a sorted on-disk stream file (file != "") —
// the out-of-core path; records/rawBytes are kept here so accounting never
// needs the evicted blob back.
type committedRun struct {
	task     int
	run      *kv.Run
	file     string
	records  int
	rawBytes int64
	stored   int64 // encoded bytes: blob size resident, stream size spilled
}

// load returns the run, reading a spilled one back off disk (handoff is
// the one consumer that needs a whole run materialized again).
func (cr *committedRun) load() (*kv.Run, error) {
	if cr.run != nil {
		return cr.run, nil
	}
	f, err := os.Open(cr.file)
	if err != nil {
		return nil, fmt.Errorf("dist: reloading spilled run: %w", err)
	}
	defer f.Close()
	r := kv.NewReader(bufio.NewReaderSize(f, 64<<10))
	pairs := make([]kv.Pair, 0, cr.records)
	for {
		p, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dist: reloading spilled run: %w", err)
		}
		pairs = append(pairs, p)
	}
	return kv.NewRun(pairs, false), nil
}

// stagedRun is one uncommitted arrival plus the membership epoch the sender
// routed under. Commit rejects runs staged under an epoch older than the
// store's: after a partition is re-homed away and back (drain A→B, later
// B→A), a late delivery addressed under the old epoch must not commit on
// top of the handed-off copy — the per-(task, partition) `have` set was
// cleared when the partition left, so the epoch is the only thing standing
// between that stale run and a double commit.
type stagedRun struct {
	run   *kv.Run
	epoch int
}

// shuffleStore is a worker's intermediate-data cache: runs pushed to this
// node because it is home to their partition, the paper's destination-side
// partition cache (§III-B). Runs arrive staged per (task, attempt) and
// become visible to reduce only when the sender's end-of-attempt marker
// commits them — the FIFO connection guarantees every run precedes its
// marker, so a commit is always complete for the partitions this node
// was home to when the sender partitioned.
//
// Deduplication is per (task, partition, epoch): per (task, partition)
// rather than per task because after a worker death re-homes partitions, a
// re-executed attempt must be able to add the newly-inherited partitions of
// a task whose other partitions this node already holds (map output is
// deterministic per task, so accepting partition p from one attempt and
// partition q from another composes correctly); and epoch-fenced because a
// membership transition that moves a partition away clears this node's
// `have` entries for it, which would otherwise let a stale pre-transition
// delivery commit alongside the handed-off copy at the partition's next
// home. Duplicates and stale-epoch runs are dropped and accounted.
//
// Not self-locking: callers hold the owning worker's mutex.
type shuffleStore struct {
	epoch      int
	partitions map[int][]committedRun            // committed runs per home partition
	have       map[int]map[int]bool              // task → partitions committed here
	staged     map[attemptKey]map[int]stagedRun  // uncommitted shuffle arrivals
	handoff    map[int]map[int][]stagedHandoff   // partition → epoch → staged handoff runs

	// Out-of-core spill state: once resident committed bytes exceed
	// spillLimit (> 0), the biggest partition's runs are evicted to sorted
	// on-disk stream files; the reduce path k-way merges resident and
	// spilled runs together. The dir provider creates the worker's scratch
	// directory lazily so jobs that never spill never touch the disk.
	spillLimit   int64
	spillDir     func() (string, error)
	spillLed     *ledger
	spillTr      *tracer
	spillSeq     int
	resident     int64
	residentPart map[int]int64
}

// stagedHandoff is one handed-off committed run awaiting its handoff mark.
type stagedHandoff struct {
	task int
	run  *kv.Run
}

func newShuffleStore() *shuffleStore {
	return &shuffleStore{
		partitions:   make(map[int][]committedRun),
		have:         make(map[int]map[int]bool),
		staged:       make(map[attemptKey]map[int]stagedRun),
		handoff:      make(map[int]map[int][]stagedHandoff),
		residentPart: make(map[int]int64),
	}
}

// enableSpill arms the out-of-core path: resident committed runs beyond
// limit bytes are evicted to stream files under dir(). led and tr (both
// optional) receive the conserv_spill_* accounting and spill spans.
func (s *shuffleStore) enableSpill(limit int64, dir func() (string, error), led *ledger, tr *tracer) {
	s.spillLimit = limit
	s.spillDir = dir
	s.spillLed = led
	s.spillTr = tr
}

// setEpoch advances the store's membership epoch; staged runs from older
// epochs become duplicates at commit time. Epochs never move backwards.
func (s *shuffleStore) setEpoch(e int) {
	if e > s.epoch {
		s.epoch = e
	}
}

// stage records one partition's run for an in-flight attempt.
func (s *shuffleStore) stage(task, attempt, part int, run *kv.Run, epoch int) {
	k := attemptKey{task, attempt}
	m := s.staged[k]
	if m == nil {
		m = make(map[int]stagedRun)
		s.staged[k] = m
	}
	m[part] = stagedRun{run: run, epoch: epoch}
}

// commit publishes an attempt's staged runs, partition by partition:
// partitions this node has not seen for the task are accepted; the rest —
// re-execution duplicates and runs staged under a pre-transition epoch —
// are dropped. Returns record counts for the conservation ledger.
func (s *shuffleStore) commit(task, attempt int) (accepted, dupped int64) {
	k := attemptKey{task, attempt}
	m := s.staged[k]
	delete(s.staged, k)
	for part, sr := range m {
		if sr.epoch < s.epoch || s.have[task][part] {
			dupped += int64(sr.run.Records)
			continue
		}
		if s.have[task] == nil {
			s.have[task] = make(map[int]bool)
		}
		s.have[task][part] = true
		s.addCommitted(part, committedRun{
			task: task, run: sr.run,
			records: sr.run.Records, rawBytes: sr.run.RawBytes, stored: sr.run.StoredBytes(),
		})
		accepted += int64(sr.run.Records)
	}
	s.maybeSpill()
	return accepted, dupped
}

// addCommitted appends one committed run and books its resident bytes.
func (s *shuffleStore) addCommitted(part int, cr committedRun) {
	s.partitions[part] = append(s.partitions[part], cr)
	if cr.run != nil {
		s.resident += cr.stored
		s.residentPart[part] += cr.stored
	}
}

// maybeSpill evicts whole partitions — largest resident first — until the
// store is back under its limit. A disk failure disarms spilling rather
// than failing the job: the data is still resident and correct, just no
// longer bounded.
func (s *shuffleStore) maybeSpill() {
	for s.spillLimit > 0 && s.resident > s.spillLimit {
		best, bestBytes := -1, int64(0)
		for p, b := range s.residentPart {
			if b > bestBytes {
				best, bestBytes = p, b
			}
		}
		if best < 0 || !s.spillPartition(best) {
			return
		}
	}
}

// spillPartition evicts every resident run of one partition to sorted
// on-disk stream files. Reports whether any bytes moved.
func (s *shuffleStore) spillPartition(part int) bool {
	dir, err := s.spillDir()
	if err != nil {
		s.spillLimit = 0
		return false
	}
	crs := s.partitions[part]
	moved := false
	for i := range crs {
		cr := &crs[i]
		if cr.run == nil {
			continue
		}
		t0 := time.Now()
		path := filepath.Join(dir, fmt.Sprintf("spill-%06d.run", s.spillSeq))
		s.spillSeq++
		stored, err := writeRunFile(path, cr.run)
		if err != nil {
			s.spillLimit = 0
			return moved
		}
		s.resident -= cr.stored
		s.residentPart[part] -= cr.stored
		if s.spillLed != nil {
			s.spillLed.spillRecords.Add(int64(cr.records))
			s.spillLed.spillRawBytes.Add(cr.rawBytes)
			s.spillLed.spillStoredBytes.Add(stored)
			s.spillLed.spillFiles.Add(1)
		}
		if s.spillTr != nil {
			s.spillTr.record(stageSpill, t0, time.Now(), 0)
		}
		cr.run, cr.file, cr.stored = nil, path, stored
		moved = true
	}
	if s.residentPart[part] <= 0 {
		delete(s.residentPart, part)
	}
	return moved
}

// writeRunFile streams one sorted run into the kv stream format (the same
// spill framing the native runtime uses), returning the encoded size.
func writeRunFile(path string, run *kv.Run) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w := kv.NewWriter(f)
	it := run.Iter()
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		if err := w.Write(p); err != nil {
			f.Close()
			os.Remove(path)
			return 0, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(path)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return 0, err
	}
	return w.Bytes(), nil
}

// spillFileIter streams a spilled run back for the reduce merge, surfacing
// stream errors through the Iterator's exhaustion plus the err method.
type spillFileIter struct {
	f  *os.File
	it *kv.StreamIter
}

func (si *spillFileIter) Next() (kv.Pair, bool) { return si.it.Next() }

// partitionIters returns one sorted iterator per committed run of part —
// resident runs iterate in memory, spilled runs stream off disk — plus the
// partition's record total. close releases the open spill files; err (from
// any iterator's underlying stream) must be checked after the merge drains.
func (s *shuffleStore) partitionIters(part int) (iters []kv.Iterator, records int64, close func(), errf func() error) {
	crs := s.partitions[part]
	var files []*spillFileIter
	var openErr error
	for i := range crs {
		cr := &crs[i]
		records += int64(cr.records)
		if cr.run != nil {
			iters = append(iters, cr.run.Iter())
			continue
		}
		f, err := os.Open(cr.file)
		if err != nil {
			openErr = fmt.Errorf("dist: opening spilled run: %w", err)
			continue
		}
		si := &spillFileIter{f: f, it: kv.NewStreamIter(kv.NewReader(bufio.NewReaderSize(f, 64<<10)))}
		files = append(files, si)
		iters = append(iters, si)
	}
	close = func() {
		for _, si := range files {
			si.f.Close()
		}
	}
	errf = func() error {
		if openErr != nil {
			return openErr
		}
		for _, si := range files {
			if err := si.it.Err(); err != nil {
				return fmt.Errorf("dist: streaming spilled run: %w", err)
			}
		}
		return nil
	}
	return iters, records, close, errf
}

// takePartition removes a partition this node is handing to a new home,
// clearing its dedup entries, and returns the committed runs (with task
// identity) plus their record count for the handoff-out ledger.
func (s *shuffleStore) takePartition(part int) (runs []committedRun, records int64) {
	runs = s.partitions[part]
	delete(s.partitions, part)
	s.resident -= s.residentPart[part]
	delete(s.residentPart, part)
	for _, cr := range runs {
		records += int64(cr.records)
		delete(s.have[cr.task], part)
	}
	return runs, records
}

// stageHandoff records one handed-off run for a re-homed partition; it
// commits when the handoff mark for that partition and epoch arrives.
func (s *shuffleStore) stageHandoff(part, epoch, task int, run *kv.Run) {
	m := s.handoff[part]
	if m == nil {
		m = make(map[int][]stagedHandoff)
		s.handoff[part] = m
	}
	m[epoch] = append(m[epoch], stagedHandoff{task: task, run: run})
}

// adoptHandoff commits a partition's staged handoff runs at their new home.
// Runs staged under an epoch older than the store's (a transition was
// overtaken by a death) and (task, partition) pairs already present are
// dropped as duplicates. Returns record counts for the ledger.
func (s *shuffleStore) adoptHandoff(part, epoch int) (adopted, dupped int64) {
	m := s.handoff[part]
	entries := m[epoch]
	delete(s.handoff, part)
	for _, sh := range entries {
		if epoch < s.epoch || s.have[sh.task][part] {
			dupped += int64(sh.run.Records)
			continue
		}
		if s.have[sh.task] == nil {
			s.have[sh.task] = make(map[int]bool)
		}
		s.have[sh.task][part] = true
		s.addCommitted(part, committedRun{
			task: sh.task, run: sh.run,
			records: sh.run.Records, rawBytes: sh.run.RawBytes, stored: sh.run.StoredBytes(),
		})
		adopted += int64(sh.run.Records)
	}
	s.maybeSpill()
	return adopted, dupped
}

// lostAll empties the store, returning the committed record count — the
// data that dies with this worker.
func (s *shuffleStore) lostAll() int64 {
	var lost int64
	for _, crs := range s.partitions {
		for _, cr := range crs {
			lost += int64(cr.records)
			if cr.file != "" {
				os.Remove(cr.file)
			}
		}
	}
	s.partitions = make(map[int][]committedRun)
	s.have = make(map[int]map[int]bool)
	s.staged = make(map[attemptKey]map[int]stagedRun)
	s.handoff = make(map[int]map[int][]stagedHandoff)
	s.resident = 0
	s.residentPart = make(map[int]int64)
	return lost
}
