package dist

import "glasswing/internal/kv"

// attemptKey identifies one execution of one map task.
type attemptKey struct{ task, attempt int }

// shuffleStore is a worker's intermediate-data cache: runs pushed to this
// node because it is home to their partition, the paper's destination-side
// partition cache (§III-B). Runs arrive staged per (task, attempt) and
// become visible to reduce only when the sender's end-of-attempt marker
// commits them — the FIFO connection guarantees every run precedes its
// marker, so a commit is always complete for the partitions this node
// was home to when the sender partitioned.
//
// Deduplication is per (task, partition), not per task: after a worker
// death re-homes partitions, a re-executed attempt must be able to add the
// newly-inherited partitions of a task whose other partitions this node
// already holds. Map output is deterministic per task, so accepting
// partition p from one attempt and partition q from another composes
// correctly; duplicate partitions are dropped and accounted.
//
// Not self-locking: callers hold the owning worker's mutex.
type shuffleStore struct {
	partitions map[int][]*kv.Run            // committed runs per home partition
	have       map[int]map[int]bool         // task → partitions committed here
	staged     map[attemptKey]map[int]*kv.Run // uncommitted arrivals
}

func newShuffleStore() *shuffleStore {
	return &shuffleStore{
		partitions: make(map[int][]*kv.Run),
		have:       make(map[int]map[int]bool),
		staged:     make(map[attemptKey]map[int]*kv.Run),
	}
}

// stage records one partition's run for an in-flight attempt.
func (s *shuffleStore) stage(task, attempt, part int, run *kv.Run) {
	k := attemptKey{task, attempt}
	m := s.staged[k]
	if m == nil {
		m = make(map[int]*kv.Run)
		s.staged[k] = m
	}
	m[part] = run
}

// commit publishes an attempt's staged runs, partition by partition:
// partitions this node has not seen for the task are accepted, the rest
// are duplicates from re-execution and dropped. Returns record counts for
// the conservation ledger.
func (s *shuffleStore) commit(task, attempt int) (accepted, dupped int64) {
	k := attemptKey{task, attempt}
	m := s.staged[k]
	delete(s.staged, k)
	for part, run := range m {
		if s.have[task][part] {
			dupped += int64(run.Records)
			continue
		}
		if s.have[task] == nil {
			s.have[task] = make(map[int]bool)
		}
		s.have[task][part] = true
		s.partitions[part] = append(s.partitions[part], run)
		accepted += int64(run.Records)
	}
	return accepted, dupped
}

// runsFor hands a partition's committed runs to reduce.
func (s *shuffleStore) runsFor(part int) []*kv.Run { return s.partitions[part] }

// lostAll empties the store, returning the committed record count — the
// data that dies with this worker.
func (s *shuffleStore) lostAll() int64 {
	var lost int64
	for _, runs := range s.partitions {
		for _, r := range runs {
			lost += int64(r.Records)
		}
	}
	s.partitions = make(map[int][]*kv.Run)
	s.have = make(map[int]map[int]bool)
	s.staged = make(map[attemptKey]map[int]*kv.Run)
	return lost
}
