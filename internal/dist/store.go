package dist

import "glasswing/internal/kv"

// attemptKey identifies one execution of one map task.
type attemptKey struct{ task, attempt int }

// committedRun is one run the store has accepted, tagged with the task that
// produced it so a re-homed partition can be handed to its new owner with
// enough identity for destination-side dedup.
type committedRun struct {
	task int
	run  *kv.Run
}

// stagedRun is one uncommitted arrival plus the membership epoch the sender
// routed under. Commit rejects runs staged under an epoch older than the
// store's: after a partition is re-homed away and back (drain A→B, later
// B→A), a late delivery addressed under the old epoch must not commit on
// top of the handed-off copy — the per-(task, partition) `have` set was
// cleared when the partition left, so the epoch is the only thing standing
// between that stale run and a double commit.
type stagedRun struct {
	run   *kv.Run
	epoch int
}

// shuffleStore is a worker's intermediate-data cache: runs pushed to this
// node because it is home to their partition, the paper's destination-side
// partition cache (§III-B). Runs arrive staged per (task, attempt) and
// become visible to reduce only when the sender's end-of-attempt marker
// commits them — the FIFO connection guarantees every run precedes its
// marker, so a commit is always complete for the partitions this node
// was home to when the sender partitioned.
//
// Deduplication is per (task, partition, epoch): per (task, partition)
// rather than per task because after a worker death re-homes partitions, a
// re-executed attempt must be able to add the newly-inherited partitions of
// a task whose other partitions this node already holds (map output is
// deterministic per task, so accepting partition p from one attempt and
// partition q from another composes correctly); and epoch-fenced because a
// membership transition that moves a partition away clears this node's
// `have` entries for it, which would otherwise let a stale pre-transition
// delivery commit alongside the handed-off copy at the partition's next
// home. Duplicates and stale-epoch runs are dropped and accounted.
//
// Not self-locking: callers hold the owning worker's mutex.
type shuffleStore struct {
	epoch      int
	partitions map[int][]committedRun            // committed runs per home partition
	have       map[int]map[int]bool              // task → partitions committed here
	staged     map[attemptKey]map[int]stagedRun  // uncommitted shuffle arrivals
	handoff    map[int]map[int][]stagedHandoff   // partition → epoch → staged handoff runs
}

// stagedHandoff is one handed-off committed run awaiting its handoff mark.
type stagedHandoff struct {
	task int
	run  *kv.Run
}

func newShuffleStore() *shuffleStore {
	return &shuffleStore{
		partitions: make(map[int][]committedRun),
		have:       make(map[int]map[int]bool),
		staged:     make(map[attemptKey]map[int]stagedRun),
		handoff:    make(map[int]map[int][]stagedHandoff),
	}
}

// setEpoch advances the store's membership epoch; staged runs from older
// epochs become duplicates at commit time. Epochs never move backwards.
func (s *shuffleStore) setEpoch(e int) {
	if e > s.epoch {
		s.epoch = e
	}
}

// stage records one partition's run for an in-flight attempt.
func (s *shuffleStore) stage(task, attempt, part int, run *kv.Run, epoch int) {
	k := attemptKey{task, attempt}
	m := s.staged[k]
	if m == nil {
		m = make(map[int]stagedRun)
		s.staged[k] = m
	}
	m[part] = stagedRun{run: run, epoch: epoch}
}

// commit publishes an attempt's staged runs, partition by partition:
// partitions this node has not seen for the task are accepted; the rest —
// re-execution duplicates and runs staged under a pre-transition epoch —
// are dropped. Returns record counts for the conservation ledger.
func (s *shuffleStore) commit(task, attempt int) (accepted, dupped int64) {
	k := attemptKey{task, attempt}
	m := s.staged[k]
	delete(s.staged, k)
	for part, sr := range m {
		if sr.epoch < s.epoch || s.have[task][part] {
			dupped += int64(sr.run.Records)
			continue
		}
		if s.have[task] == nil {
			s.have[task] = make(map[int]bool)
		}
		s.have[task][part] = true
		s.partitions[part] = append(s.partitions[part], committedRun{task: task, run: sr.run})
		accepted += int64(sr.run.Records)
	}
	return accepted, dupped
}

// runsFor hands a partition's committed runs to reduce.
func (s *shuffleStore) runsFor(part int) []*kv.Run {
	crs := s.partitions[part]
	if len(crs) == 0 {
		return nil
	}
	runs := make([]*kv.Run, len(crs))
	for i, cr := range crs {
		runs[i] = cr.run
	}
	return runs
}

// takePartition removes a partition this node is handing to a new home,
// clearing its dedup entries, and returns the committed runs (with task
// identity) plus their record count for the handoff-out ledger.
func (s *shuffleStore) takePartition(part int) (runs []committedRun, records int64) {
	runs = s.partitions[part]
	delete(s.partitions, part)
	for _, cr := range runs {
		records += int64(cr.run.Records)
		delete(s.have[cr.task], part)
	}
	return runs, records
}

// stageHandoff records one handed-off run for a re-homed partition; it
// commits when the handoff mark for that partition and epoch arrives.
func (s *shuffleStore) stageHandoff(part, epoch, task int, run *kv.Run) {
	m := s.handoff[part]
	if m == nil {
		m = make(map[int][]stagedHandoff)
		s.handoff[part] = m
	}
	m[epoch] = append(m[epoch], stagedHandoff{task: task, run: run})
}

// adoptHandoff commits a partition's staged handoff runs at their new home.
// Runs staged under an epoch older than the store's (a transition was
// overtaken by a death) and (task, partition) pairs already present are
// dropped as duplicates. Returns record counts for the ledger.
func (s *shuffleStore) adoptHandoff(part, epoch int) (adopted, dupped int64) {
	m := s.handoff[part]
	entries := m[epoch]
	delete(s.handoff, part)
	for _, sh := range entries {
		if epoch < s.epoch || s.have[sh.task][part] {
			dupped += int64(sh.run.Records)
			continue
		}
		if s.have[sh.task] == nil {
			s.have[sh.task] = make(map[int]bool)
		}
		s.have[sh.task][part] = true
		s.partitions[part] = append(s.partitions[part], committedRun{task: sh.task, run: sh.run})
		adopted += int64(sh.run.Records)
	}
	return adopted, dupped
}

// lostAll empties the store, returning the committed record count — the
// data that dies with this worker.
func (s *shuffleStore) lostAll() int64 {
	var lost int64
	for _, crs := range s.partitions {
		for _, cr := range crs {
			lost += int64(cr.run.Records)
		}
	}
	s.partitions = make(map[int][]committedRun)
	s.have = make(map[int]map[int]bool)
	s.staged = make(map[attemptKey]map[int]stagedRun)
	s.handoff = make(map[int]map[int][]stagedHandoff)
	return lost
}
