package dist

import "fmt"

// dsched is the coordinator's map-task scheduler. It is the event-driven
// mirror of internal/core's generic taskScheduler[T] semantics: per-worker
// queues with affinity, work stealing from the most-loaded queue's tail,
// failed attempts requeued on the same worker up to maxAttempts, and
// worker death triggering redistribution plus re-execution. It is not
// self-locking — only the coordinator's single event loop touches it.
//
// One divergence from the mapper-local story is deliberate: because the
// shuffle pushes every task's output to destination workers as it is
// produced, a death invalidates a slice of *every* attempt that shuffled
// under the old partition-home map. So death re-queues not just the dead
// worker's tasks but every resolved or in-flight task, with a bumped
// attempt number; stale attempts still executing report under their old
// attempt and are ignored, and destination-side per-(task,partition) dedup
// discards whatever re-delivered output survived.
type dsched struct {
	queues   [][]int // per-worker pending task ids (FIFO)
	attempt  []int   // task → current expected attempt
	failures []int   // task → failed-attempt count
	resolved []bool
	total    int
	resolvedCount int
	maxAttempts   int

	retries    int // failed attempts requeued
	recoveries int // resolved tasks re-executed after a death
}

func newSched(nTasks, nWorkers, maxAttempts int) *dsched {
	return newSchedAffinity(nTasks, nWorkers, maxAttempts, nil)
}

// newSchedAffinity is newSched with locality-aware placement: prefer[t]
// names the worker whose queue task t is dealt to — the block store passes
// a replica holder here, so the initial deal is a local disk read for every
// task (Fig 3(d)'s "move compute to data"). A nil prefer, or an entry out
// of range, falls back to the classic t%n deal. Work stealing is untouched:
// a stolen task simply becomes a remote streaming read, which is exactly
// the graceful degradation the locality counters exist to measure.
func newSchedAffinity(nTasks, nWorkers, maxAttempts int, prefer []int) *dsched {
	s := &dsched{
		queues:      make([][]int, nWorkers),
		attempt:     make([]int, nTasks),
		failures:    make([]int, nTasks),
		resolved:    make([]bool, nTasks),
		total:       nTasks,
		maxAttempts: maxAttempts,
	}
	for t := 0; t < nTasks; t++ {
		w := t % nWorkers
		if t < len(prefer) && prefer[t] >= 0 && prefer[t] < nWorkers {
			w = prefer[t]
		}
		s.queues[w] = append(s.queues[w], t)
	}
	return s
}

// next pops the next task for wkr: its own queue first, then a steal from
// the tail of the most-loaded live queue.
func (s *dsched) next(wkr int, alive []bool) (int, bool) {
	if q := s.queues[wkr]; len(q) > 0 {
		t := q[0]
		s.queues[wkr] = q[1:]
		return t, true
	}
	victim, best := -1, 0
	for w, q := range s.queues {
		if alive[w] && len(q) > best {
			victim, best = w, len(q)
		}
	}
	if victim < 0 {
		return 0, false
	}
	q := s.queues[victim]
	t := q[len(q)-1]
	s.queues[victim] = q[:len(q)-1]
	return t, true
}

// done resolves a task if the report matches the current attempt; stale
// reports (from attempts superseded by a death) are ignored.
func (s *dsched) done(task, attempt int) bool {
	if attempt != s.attempt[task] || s.resolved[task] {
		return false
	}
	s.resolved[task] = true
	s.resolvedCount++
	return true
}

// fail requeues a failed current attempt on the same worker (survivors
// inherit via death redistribution if it later dies); exhausting
// maxAttempts fails the job.
func (s *dsched) fail(task, attempt, wkr int, alive []bool, reason string) error {
	if attempt != s.attempt[task] || s.resolved[task] {
		return nil // stale attempt; its successor is already queued
	}
	s.failures[task]++
	if s.failures[task] >= s.maxAttempts {
		if reason != "" {
			return fmt.Errorf("dist: task %d failed %d attempts (last: %s)", task, s.failures[task], reason)
		}
		return fmt.Errorf("dist: task %d failed %d attempts", task, s.failures[task])
	}
	s.attempt[task]++
	s.retries++
	target := wkr
	if !alive[target] {
		target = s.anyLive(alive)
	}
	s.queues[target] = append(s.queues[target], task)
	return nil
}

func (s *dsched) anyLive(alive []bool) int {
	for w, a := range alive {
		if a {
			return w
		}
	}
	return 0
}

// join grows the scheduler to admit a new worker id. The joiner starts with
// an empty queue and picks up work by stealing; nothing is re-executed —
// committed shuffle data moves to it via partition handoff, not re-delivery.
func (s *dsched) join(wkr int) {
	for len(s.queues) <= wkr {
		s.queues = append(s.queues, nil)
	}
}

// drain moves a gracefully-leaving worker's queued tasks to survivors,
// round-robin. Unlike death, nothing resolved or in-flight is touched: the
// drain is only initiated once the worker has no outstanding attempts, and
// its committed shuffle data is handed off rather than lost, so no attempt
// supersession is needed.
func (s *dsched) drain(wkr int, alive []bool) {
	orphans := s.queues[wkr]
	s.queues[wkr] = nil
	live := []int{}
	for w, a := range alive {
		if a && w != wkr {
			live = append(live, w)
		}
	}
	if len(live) == 0 {
		return
	}
	for i, t := range orphans {
		s.queues[live[i%len(live)]] = append(s.queues[live[i%len(live)]], t)
	}
}

// newSchedResume rebuilds a scheduler from journaled state: resolved tasks
// stay resolved at their journaled attempt, and every unresolved task is
// dealt round-robin across the live workers under its journaled attempt.
func newSchedResume(nTasks, nWorkers, maxAttempts int, resolved []bool, attempt []int, alive []bool) *dsched {
	s := &dsched{
		queues:      make([][]int, nWorkers),
		attempt:     make([]int, nTasks),
		failures:    make([]int, nTasks),
		resolved:    make([]bool, nTasks),
		total:       nTasks,
		maxAttempts: maxAttempts,
	}
	copy(s.attempt, attempt)
	live := []int{}
	for w, a := range alive {
		if a {
			live = append(live, w)
		}
	}
	rr := 0
	for t := 0; t < nTasks; t++ {
		if resolved[t] {
			s.resolved[t] = true
			s.resolvedCount++
			continue
		}
		if len(live) > 0 {
			s.queues[live[rr%len(live)]] = append(s.queues[live[rr%len(live)]], t)
			rr++
		}
	}
	return s
}

// death redistributes after wkr dies (alive must already exclude it):
// its queued tasks move to survivors, and every resolved or in-flight task
// is re-queued under a fresh attempt, because its shuffle output was
// addressed under the old partition-home map.
func (s *dsched) death(wkr int, alive []bool) {
	orphans := s.queues[wkr]
	s.queues[wkr] = nil
	live := []int{}
	for w, a := range alive {
		if a {
			live = append(live, w)
		}
	}
	if len(live) == 0 {
		return
	}
	rr := 0
	requeue := func(t int) {
		s.queues[live[rr%len(live)]] = append(s.queues[live[rr%len(live)]], t)
		rr++
	}
	for _, t := range orphans {
		requeue(t)
	}
	queued := make(map[int]bool, len(orphans))
	for _, q := range s.queues {
		for _, t := range q {
			queued[t] = true
		}
	}
	for t := 0; t < s.total; t++ {
		if queued[t] {
			continue // still pending; will execute under the new home map
		}
		if s.resolved[t] {
			s.resolved[t] = false
			s.resolvedCount--
			s.recoveries++
		}
		// Resolved or in-flight: supersede with a fresh attempt.
		s.attempt[t]++
		requeue(t)
	}
}
