package dist

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// corpusSeeds builds the journal images the fuzz corpus starts from: a
// healthy journal plus the damage classes replay must refuse — truncation,
// bit flips, duplicated records, regressed epochs. The same set is checked
// in under testdata/fuzz/FuzzJournalReplay so CI's fuzz-smoke always covers
// them even with -fuzztime 0 (seed-only mode).
func corpusSeeds(t testing.TB) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	write := func(name string, build func(j *journal)) []byte {
		path := filepath.Join(dir, name)
		j, err := createJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		build(j)
		j.close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	job := Job{App: AppSpec{Name: "wc"}, Partitions: 3, Collector: 1, MaxAttempts: 4}
	digest := blocksDigest([][]byte{[]byte("block zero"), []byte("block one")})
	healthy := write("healthy", func(j *journal) {
		j.jobStart(job, 42, 2, digest)
		j.membership(0, []int{0, 1, 0}, []bool{true, true}, []int{0, 0}, 0, 0, 0)
		j.mapDone(0, 0, attemptStats{RecordsIn: 10, PairsOut: 20})
		j.mapDone(1, 0, attemptStats{RecordsIn: 5, PairsOut: 9})
		j.reduceDone(1, 0, 12, 7, nil)
	})
	churn := write("churn", func(j *journal) {
		j.jobStart(job, 42, 2, digest)
		j.membership(0, []int{0, 1, 0}, []bool{true, true}, []int{0, 0}, 0, 0, 0)
		j.mapDone(0, 0, attemptStats{PairsOut: 20})
		// A death bumps attempts: task 0's resolution is superseded.
		j.membership(1, []int{0, 0, 0}, []bool{true, false}, []int{1, 1}, 0, 0, 1)
		j.mapDone(0, 1, attemptStats{PairsOut: 20})
		j.mapDone(1, 1, attemptStats{PairsOut: 9})
	})

	seeds := map[string][]byte{
		"healthy": healthy,
		"churn":   churn,
		"empty":   nil,
	}
	// Truncations at several depths: mid-record, mid-CRC, clean prefix.
	for _, cut := range []int{1, len(healthy) / 3, len(healthy) - 2, len(healthy) - 15} {
		if cut > 0 && cut < len(healthy) {
			seeds[fmt.Sprintf("trunc-%d", cut)] = healthy[:cut]
		}
	}
	// Garble one byte in the middle (CRC must catch it).
	garbled := append([]byte(nil), healthy...)
	garbled[len(garbled)/2] ^= 0x40
	seeds["garbled"] = garbled
	// Duplicate the tail record wholesale.
	dup := write("dup", func(j *journal) {
		j.jobStart(job, 42, 2, digest)
		j.membership(0, []int{0, 1, 0}, []bool{true, true}, []int{0, 0}, 0, 0, 0)
		j.mapDone(0, 0, attemptStats{})
		j.mapDone(0, 0, attemptStats{}) // duplicate resolution
	})
	seeds["dup-resolution"] = dup
	regressed := write("regressed", func(j *journal) {
		j.jobStart(job, 42, 2, digest)
		j.membership(5, []int{0, 1, 0}, []bool{true, true}, []int{0, 0}, 0, 0, 0)
		j.membership(3, []int{0, 1, 0}, []bool{true, true}, []int{0, 0}, 0, 0, 0) // epoch went backwards
	})
	seeds["epoch-regressed"] = regressed
	seeds["no-membership"] = write("nomem", func(j *journal) {
		j.jobStart(job, 42, 2, digest)
	})
	return seeds
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus. Guarded by an
// env var so normal runs never touch testdata; run with
//
//	GLASSWING_WRITE_CORPUS=1 go test ./internal/dist -run TestWriteFuzzCorpus
//
// after changing the journal format, and commit the result.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("GLASSWING_WRITE_CORPUS") == "" {
		t.Skip("set GLASSWING_WRITE_CORPUS=1 to regenerate the corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range corpusSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzJournalReplay asserts the resume gate's core promise: an arbitrary
// journal image either replays to a coherent, deterministic state or is
// cleanly refused with a "resume refused" error — never a panic, never a
// divergent resume.
func FuzzJournalReplay(f *testing.F) {
	for _, data := range corpusSeeds(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := replayJournal(data)
		rs2, err2 := replayJournal(data)
		// Determinism: the same image must replay identically every time —
		// a coordinator that resumes twice from one journal may not diverge.
		if (err == nil) != (err2 == nil) || (err != nil && err.Error() != err2.Error()) {
			t.Fatalf("non-deterministic replay: %v vs %v", err, err2)
		}
		if err != nil {
			if !strings.HasPrefix(err.Error(), resumeRefused) {
				t.Fatalf("refusal without the resume-refused prefix: %v", err)
			}
			return
		}
		if !reflect.DeepEqual(rs, rs2) {
			t.Fatal("non-deterministic replay state")
		}
		// Coherence of an accepted state.
		if rs.epoch < 0 {
			t.Fatalf("accepted negative epoch %d", rs.epoch)
		}
		if len(rs.homes) != rs.job.Partitions || len(rs.alive) == 0 {
			t.Fatalf("accepted malformed membership: %d homes, %d alive", len(rs.homes), len(rs.alive))
		}
		for p, h := range rs.homes {
			if h < 0 || h >= len(rs.alive) || !rs.alive[h] {
				t.Fatalf("partition %d homed on non-live worker %d", p, h)
			}
		}
		if len(rs.resolved) != rs.nTasks || len(rs.attempt) != rs.nTasks {
			t.Fatalf("task arrays sized %d/%d for %d tasks", len(rs.resolved), len(rs.attempt), rs.nTasks)
		}
		for t2, a := range rs.attempt {
			if a < 0 {
				t.Fatalf("task %d accepted at negative attempt %d", t2, a)
			}
		}
		for p := range rs.outputs {
			if p < 0 || p >= rs.job.Partitions {
				t.Fatalf("output for out-of-range partition %d", p)
			}
			if _, ok := rs.reduceAt[p]; !ok {
				t.Fatalf("output for partition %d with no attempt record", p)
			}
		}
	})
}
