// Package dist is the genuinely distributed Glasswing runtime: a
// coordinator and N worker nodes connected over TCP, running the same
// App/collector semantics as internal/core and internal/native but with a
// real wire shuffle — intermediate kv runs stream partition-by-partition to
// their destination workers *while* map execution continues, the paper's
// stage-4 compute/communication overlap made real (§III-A stage 5 pushes
// partitions to destination nodes; §III-B caches them there).
//
// The runtime comes in two deployments sharing every line of protocol code:
//
//   - loopback: coordinator and workers are goroutines in one process,
//     connected through real 127.0.0.1 TCP sockets (RunLoopback). This is
//     what tests, conformance and CI drive — the bytes genuinely cross the
//     kernel's TCP stack.
//   - multi-process: `cmd/glasswing -coordinator` serves a job and
//     `cmd/distnode` (or `cmd/glasswing -worker`) joins from other
//     processes or hosts; the application is resolved by name through the
//     registry in registry.go.
//
// Architecture (one job):
//
//	coordinator ── MapTask(block) ──▶ worker w
//	worker w ── Run(partition p) ──▶ worker home(p)     (during map!)
//	worker w ── Mark(attempt) ──▶ every peer            (attempt complete)
//	peer ── Ack ──▶ worker w                            (commit barrier)
//	worker w ── MapDone ──▶ coordinator                 (after all acks)
//	coordinator ── StartReduce/ReduceTask(p) ──▶ home(p)
//	home(p) ── ReduceDone(output) ──▶ coordinator
//
// Fault tolerance mirrors the semantics of internal/core's taskScheduler:
// failed attempts are requeued up to MaxAttempts; a worker death (detected
// by connection loss or heartbeat timeout) requeues its in-flight tasks,
// reassigns its home partitions to survivors and re-executes every resolved
// map task — the destination-push shuffle means a dead node loses a slice
// of *every* task's output, so unlike Hadoop's mapper-local story the
// recovery set is all resolved tasks; destination-side first-marker-wins
// dedup discards the re-delivered output partitions that survived.
//
// Every transfer is instrumented through internal/obs (net/send and
// net/recv spans on the worker's node track, conserv_net_* counters), so
// Chrome traces show the wire stage and internal/conformance can prove
// records sent == received + lost even across a worker kill.
package dist

import (
	"time"

	"glasswing/internal/core"
	"glasswing/internal/kv"
)

// AppSpec identifies the job's application on the wire so multi-process
// workers can reconstruct the kernels locally (code never crosses the
// network; both sides run the same binary). Params is an opaque
// registry-defined payload — TeraSort ships its sampled range boundaries,
// KMeans its center spec.
type AppSpec struct {
	Name   string
	Params []byte
}

// Job is the wire-level job description the coordinator broadcasts in
// JobStart.
type Job struct {
	App        AppSpec
	Partitions int // total reduce partitions across the cluster
	Collector  core.CollectorKind
	UseCombiner bool
	// Compress DEFLATEs each coalesced shuffle frame once on the wire.
	// Runs themselves stay uncompressed at both ends — cheap to build, and
	// the receiver decodes them as zero-copy views into the frame buffer —
	// so the compression context is per frame, amortized across every run
	// the frame carries.
	Compress bool
	// MaxAttempts bounds failed executions per task (0 = default 4).
	MaxAttempts int
}

func (j Job) withDefaults() Job {
	if j.Partitions <= 0 {
		j.Partitions = 4
	}
	if j.MaxAttempts <= 0 {
		j.MaxAttempts = 4
	}
	return j
}

// Tuning holds the transport knobs shared by coordinator and workers.
type Tuning struct {
	// SendWindow bounds the bytes of shuffle data queued on one
	// connection's write pump; a sender whose window is full blocks until
	// the pump drains — backpressure from a slow receiver propagates to
	// the map executor (0 = default 4 MiB).
	SendWindow int64
	// HeartbeatEvery is the keep-alive send interval (0 = default 1s).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout declares a peer dead after this long without any
	// inbound frame (0 = default 10s).
	HeartbeatTimeout time.Duration
	// MapSlots is how many map tasks a worker may hold at once; the wire
	// shuffle of task k overlaps the kernel of task k+1 even at 1 because
	// sends are asynchronous (0 = default 2).
	MapSlots int
	// CoalesceBytes flushes a peer's outbound run coalescer once this many
	// bytes of run entries are buffered (0 = default 256 KiB).
	CoalesceBytes int64
	// CoalesceDelay bounds how long a buffered run waits for more
	// passengers before its frame ships anyway (0 = default 2ms).
	CoalesceDelay time.Duration
	// RejoinGrace is how long a worker that loses its coordinator link
	// keeps redialing before declaring the job lost (0 = don't redial).
	// With a grace window, a coordinator that restarts and resumes from
	// its journal picks its workers back up instead of stranding them.
	RejoinGrace time.Duration
	// SpillThreshold caps a worker's resident intermediate shuffle data:
	// once committed runs exceed this many encoded bytes, whole partitions
	// are evicted to sorted on-disk run files and the reduce path k-way
	// merges them back streamingly — the out-of-core mode that lets a
	// dataset far larger than RAM complete (0 = never spill, the
	// everything-resident behavior every earlier test pins).
	SpillThreshold int64
	// WorkDir is where a worker puts its block-store replicas and spill
	// files ("" = the OS temp dir). Each worker creates (and removes) a
	// unique subdirectory, so loopback workers sharing one WorkDir don't
	// collide.
	WorkDir string
}

func (t Tuning) withDefaults() Tuning {
	if t.SendWindow <= 0 {
		t.SendWindow = 4 << 20
	}
	if t.HeartbeatEvery <= 0 {
		t.HeartbeatEvery = time.Second
	}
	if t.HeartbeatTimeout <= 0 {
		t.HeartbeatTimeout = 10 * time.Second
	}
	if t.MapSlots <= 0 {
		t.MapSlots = 2
	}
	if t.CoalesceBytes <= 0 {
		t.CoalesceBytes = 256 << 10
	}
	if t.CoalesceDelay <= 0 {
		t.CoalesceDelay = 2 * time.Millisecond
	}
	return t
}

// Result reports one distributed run.
type Result struct {
	App     string
	Workers int

	MapElapsed    time.Duration
	ReduceElapsed time.Duration
	Total         time.Duration

	InputBytes        int64
	IntermediatePairs int64
	OutputPairs       int

	// MapRetries counts requeued failed attempts, WorkersLost dead
	// workers, MapRecoveries resolved map tasks re-executed after a death
	// — the dist analogs of core.JobStats.
	MapRetries    int
	WorkersLost   int
	MapRecoveries int

	// WorkersJoined counts workers admitted after job start,
	// WorkersDrained graceful departures whose partitions were handed off,
	// and Resumed reports whether this result came from a coordinator that
	// restarted and picked the job back up from its checkpoint journal.
	WorkersJoined  int
	WorkersDrained int
	Resumed        bool

	// Block-store locality and out-of-core spill totals (loopback runs
	// read them off the shared ledger; multi-process workers report theirs
	// in their own metrics snapshots).
	ReadLocalBytes  int64
	ReadRemoteBytes int64
	SpillRecords    int64
	SpillBytes      int64

	// TraceID is the job's distributed trace id (minted by the coordinator
	// unless Options.TraceID pinned one).
	TraceID uint64
	// ClockOffsets and ClockRTTs report, per worker id, the estimated clock
	// offset (worker clock minus coordinator clock, seconds) and the
	// round-trip time the minimum-RTT sample was taken at — the offset's
	// error bound is RTT/2. Workers with no completed probe exchange are
	// absent.
	ClockOffsets map[int]float64
	ClockRTTs    map[int]float64

	outputs [][]kv.Pair // per partition, key-sorted
}

// Output returns the final pairs in partition order; within a partition
// keys are sorted, so a range partitioner yields totally ordered output.
func (r *Result) Output() []kv.Pair {
	var out []kv.Pair
	for _, part := range r.outputs {
		out = append(out, part...)
	}
	return out
}

// Stage names for the dist runtime's spans. The map/reduce vocabulary is
// shared with the sim and native runtimes so all three export onto the same
// Chrome-trace tracks; net/send and net/recv are the wire stage this
// runtime adds.
const (
	stageMapKernel    = "map/kernel"
	stageMapInput     = "map/input"
	stageMapPartition = "map/partition"
	stageNetSend      = "net/send"
	stageNetRecv      = "net/recv"
	stageSpill        = "spill"
	stageReduce       = "reduce"
	// Coordinator-side scheduling spans (node -1 in the merged trace): the
	// tenure of one map attempt / reduce partition from dispatch to its
	// done report — the root of each task's causal chain.
	stageSchedAssign = "sched/assign"
	stageSchedReduce = "sched/reduce"
)

