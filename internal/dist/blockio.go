package dist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"glasswing/internal/blockstore"
)

// This file is the worker's half of the distributed block store: the
// scratch directory holding its replicas and spill files, ingest of
// coordinator-pushed blocks, and the local-read / remote-streaming paths a
// Ref map task resolves its input through. The coordinator's half
// (placement, namespace journaling, dispatch refs) lives in coordinator.go.

// workDir lazily creates this worker's scratch directory (under
// Tuning.WorkDir, or the OS temp dir). Jobs that never spill and never use
// the block store never touch the disk. Safe from any goroutine; must not
// be called with w.mu held by a caller that also takes wdMu elsewhere —
// wdMu is a leaf lock.
func (w *worker) workDir() (string, error) {
	w.wdMu.Lock()
	defer w.wdMu.Unlock()
	if w.wdErr != nil {
		return "", w.wdErr
	}
	if w.workdir != "" {
		return w.workdir, nil
	}
	dir, err := os.MkdirTemp(w.tun.WorkDir, "glasswing-worker-*")
	if err != nil {
		w.wdErr = fmt.Errorf("dist: worker scratch dir: %w", err)
		return "", w.wdErr
	}
	w.workdir = dir
	return dir, nil
}

// blockStore lazily opens this worker's on-disk block store.
func (w *worker) blockStore() (*blockstore.Store, error) {
	w.bsMu.Lock()
	defer w.bsMu.Unlock()
	if w.bstore != nil {
		return w.bstore, nil
	}
	dir, err := w.workDir()
	if err != nil {
		return nil, err
	}
	s, err := blockstore.Open(filepath.Join(dir, "blocks"))
	if err != nil {
		return nil, err
	}
	w.bstore = s
	return s, nil
}

// onBlockPut ingests one replica pushed by the coordinator. Handled
// synchronously on the coordinator reader: the FIFO link guarantees every
// replica is durable before any map task that might reference it arrives.
func (w *worker) onBlockPut(p []byte) error {
	m, err := decodeBlockPut(p)
	if err != nil {
		return err
	}
	s, err := w.blockStore()
	if err != nil {
		return fmt.Errorf("dist: block ingest: %w", err)
	}
	if err := s.Put(m.ID, m.Data); err != nil {
		return fmt.Errorf("dist: block ingest: %w", err)
	}
	w.led.blockIngestBytes.Add(int64(len(m.Data)))
	return nil
}

// acquireBlock resolves one map task's input bytes and reports where they
// came from: "" for a classic embedded block (no accounting — the
// pre-block-store behavior, byte for byte), "local" for the mapper's own
// disk, "remote" for a streamed fetch from a holder or a coordinator
// fallback embed. The error path reports mMapFailed upstream, and the
// scheduler retries the attempt.
func (w *worker) acquireBlock(m mapTaskMsg) ([]byte, string, error) {
	if !m.Ref {
		return m.Block, "", nil
	}
	if len(m.Block) > 0 {
		// No live holder at dispatch: the coordinator embedded the bytes.
		// They crossed the wire, so they count as a remote read.
		w.led.readRemoteBytes.Add(int64(len(m.Block)))
		return m.Block, "remote", nil
	}
	if m.AllowLocal {
		if data, ok := w.readOwnBlock(m.Task); ok {
			w.led.readLocalBytes.Add(int64(len(data)))
			return data, "local", nil
		}
	}
	var lastErr error
	for _, h := range m.Holders {
		if h == w.id {
			continue
		}
		data, err := w.fetchBlockFrom(h, m.Task, m.BlockSize)
		if err != nil {
			lastErr = err
			continue
		}
		w.led.readRemoteBytes.Add(int64(len(data)))
		return data, "remote", nil
	}
	if !m.AllowLocal {
		// Forced-remote, but every other holder is unreachable and we hold
		// a replica: correctness over placement purity — read it here and
		// account it honestly as local.
		if data, ok := w.readOwnBlock(m.Task); ok {
			w.led.readLocalBytes.Add(int64(len(data)))
			return data, "local", nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("dist: no reachable holder for block %d", m.Task)
	}
	return nil, "", lastErr
}

// readOwnBlock reads a block from this worker's own store, if held.
func (w *worker) readOwnBlock(id int) ([]byte, bool) {
	s, err := w.blockStore()
	if err != nil || !s.Has(id) {
		return nil, false
	}
	data, err := s.ReadAll(id)
	if err != nil {
		return nil, false
	}
	return data, true
}

// blockFetchWait is one in-flight remote block read: chunks append to buf
// as the peer reader drains them; done resolves when the last chunk (or a
// failure) lands.
type blockFetchWait struct {
	peer int
	buf  []byte
	done chan error // buffered; exactly one resolution per fetch
}

// fetchBlockFrom streams block id from holder j over the peer mesh.
func (w *worker) fetchBlockFrom(j, id int, size int64) ([]byte, error) {
	w.mu.Lock()
	var pc *conn
	if j >= 0 && j < len(w.peers) {
		pc = w.peers[j]
	}
	livePeer := j >= 0 && j < len(w.alive) && w.alive[j]
	w.mu.Unlock()
	if pc == nil || !livePeer {
		return nil, fmt.Errorf("dist: no live link to block holder %d", j)
	}
	w.fetchMu.Lock()
	w.fetchCtr++
	nonce := w.fetchCtr
	fw := &blockFetchWait{peer: j, buf: make([]byte, 0, size), done: make(chan error, 1)}
	w.fetches[nonce] = fw
	w.fetchMu.Unlock()

	pc.send(frame{typ: mBlockFetch, payload: blockFetchMsg{ID: id, Nonce: nonce}.encode()})
	select {
	case err := <-fw.done:
		if err != nil {
			return nil, err
		}
		return fw.buf, nil
	case <-time.After(peerMeshTimeout):
		w.fetchMu.Lock()
		delete(w.fetches, nonce)
		w.fetchMu.Unlock()
		return nil, fmt.Errorf("dist: fetching block %d from worker %d timed out", id, j)
	case <-w.stop:
		return nil, fmt.Errorf("dist: worker stopping mid-fetch of block %d", id)
	}
}

// blockIngestWait bounds how long a holder waits for a replica a peer is
// asking for to finish ingesting before declaring it missing.
const blockIngestWait = 15 * time.Second

// onBlockFetch serves one peer's streamed block read. The disk read runs on
// its own goroutine so a slow disk never stalls the peer reader's shuffle
// dispatch; chunks are control frames (bounded by the block size), so they
// flow even when the bulk send window is wedged.
func (w *worker) onBlockFetch(cc *conn, p []byte) {
	msg, err := decodeBlockFetch(p)
	if err != nil {
		return
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		fail := func() {
			cc.send(frame{typ: mBlockChunk, payload: blockChunkMsg{
				ID: msg.ID, Nonce: msg.Nonce, OK: false, Last: true,
			}.encode()})
		}
		s, err := w.blockStore()
		if err != nil {
			fail()
			return
		}
		// The coordinator's FIFO link only orders a replica's ingest before
		// THIS worker's tasks — a peer whose task dispatch won the race can
		// ask for a block whose put is still in our reader's queue. The
		// namespace says we hold it, so wait for the rename to land (Put is
		// temp-file + rename: Open sees either nothing or the whole block).
		r, err := s.Open(msg.ID)
		for deadline := time.Now().Add(blockIngestWait); err != nil && time.Now().Before(deadline); {
			select {
			case <-w.stop:
				fail()
				return
			case <-time.After(5 * time.Millisecond):
			}
			r, err = s.Open(msg.ID)
		}
		if err != nil {
			fail()
			return
		}
		defer r.Close()
		buf := make([]byte, blockstore.ReadChunk)
		for {
			n, err := r.Read(buf)
			last := err == io.EOF
			if n > 0 || last {
				cc.send(frame{typ: mBlockChunk, payload: blockChunkMsg{
					ID: msg.ID, Nonce: msg.Nonce, OK: true, Last: last, Data: buf[:n],
				}.encode()})
			}
			if last {
				return
			}
			if err != nil {
				fail()
				return
			}
		}
	}()
}

// onBlockChunk routes one streamed chunk to its waiting fetch.
func (w *worker) onBlockChunk(p []byte) {
	msg, err := decodeBlockChunk(p)
	if err != nil {
		return
	}
	w.fetchMu.Lock()
	fw := w.fetches[msg.Nonce]
	if fw == nil {
		w.fetchMu.Unlock()
		return // fetch timed out or failed over already
	}
	if !msg.OK {
		delete(w.fetches, msg.Nonce)
		w.fetchMu.Unlock()
		fw.done <- fmt.Errorf("dist: holder could not stream block %d", msg.ID)
		return
	}
	fw.buf = append(fw.buf, msg.Data...)
	last := msg.Last
	if last {
		delete(w.fetches, msg.Nonce)
	}
	w.fetchMu.Unlock()
	if last {
		fw.done <- nil
	}
}

// failFetches resolves every fetch waiting on peer j with an error — called
// when j's link dies so the executor fails over to another holder instead
// of waiting out the timeout.
func (w *worker) failFetches(j int) {
	w.fetchMu.Lock()
	var orphans []*blockFetchWait
	for n, fw := range w.fetches {
		if fw.peer == j {
			delete(w.fetches, n)
			orphans = append(orphans, fw)
		}
	}
	w.fetchMu.Unlock()
	for _, fw := range orphans {
		fw.done <- fmt.Errorf("dist: lost link to block holder %d mid-fetch", j)
	}
}
