package apps

import (
	"encoding/binary"
	"fmt"
	"math"

	"glasswing/internal/core"
	"glasswing/internal/kv"
	"glasswing/internal/workload"
)

// MMSpec configures Matrix Multiply: C = A x B over N x N single-precision
// matrices tiled into Tile x Tile sub-matrices, "each identified by the
// coordinate of its top left row and column" (§IV-A2).
type MMSpec struct {
	N    int
	Tile int
	// ModelTile, when non-zero, is the tile size the kernel cost model
	// charges for (2*T^3 multiply-adds per tile pair, T^2 adds per
	// partial tile), independent of the executed tile size. The paper's
	// matrices are far larger than what is practical to multiply for
	// real here; the executed code path is identical, only the arithmetic
	// volume differs (substitution documented in DESIGN.md).
	ModelTile int
}

// Tiles returns N/Tile.
func (s MMSpec) Tiles() int { return s.N / s.Tile }

// CostTile returns the tile size used by the cost model.
func (s MMSpec) CostTile() float64 {
	if s.ModelTile > 0 {
		return float64(s.ModelTile)
	}
	return float64(s.Tile)
}

// RecordSize is one map input record: the tile coordinates (i,j,k) plus the
// A(i,k) and B(k,j) tiles.
func (s MMSpec) RecordSize() int { return 12 + 2*s.Tile*s.Tile*4 }

// MatMul returns the MM application. A map record carries one (A-tile,
// B-tile) pair; the kernel computes the partial product tile and emits it
// keyed by the output tile coordinate; reduce sums the partial tiles. MM
// "consumes a large volume of data which limits the performance
// acceleration provided by the GPU" (§IV-A2).
//
// The paper uses two workload divisions — thread groups computing one tile
// cooperatively on GPUs, one whole tile per thread on CPUs; here that
// difference is the MapThreads choice the experiments make per device.
func MatMul(spec MMSpec) *core.App {
	t := spec.Tile
	tileBytes := t * t * 4
	return core.FinishBatchApp(&core.App{
		Name:             "MM",
		Parse:            parseFixed(spec.RecordSize()),
		ParseCostPerByte: 0.25,
		// Batch kernel: the A/B/C tile buffers and the key/value encoding
		// scratch are allocated once per chunk and reused for every record
		// — the per-record form decoded and encoded fresh tiles per pair.
		MapBatch: func(recs []kv.Pair, out *kv.Batch) {
			a := make([]float32, t*t)
			b := make([]float32, t*t)
			c := make([]float32, t*t)
			val := make([]byte, tileBytes)
			var key [8]byte
			for _, rec := range recs {
				i := binary.LittleEndian.Uint32(rec.Value[0:4])
				j := binary.LittleEndian.Uint32(rec.Value[4:8])
				decodeTileInto(a, rec.Value[12:12+tileBytes])
				decodeTileInto(b, rec.Value[12+tileBytes:])
				for x := range c {
					c[x] = 0
				}
				for r := 0; r < t; r++ {
					for k := 0; k < t; k++ {
						av := a[r*t+k]
						if av == 0 {
							continue
						}
						for col := 0; col < t; col++ {
							c[r*t+col] += av * b[k*t+col]
						}
					}
				}
				binary.LittleEndian.PutUint32(key[0:4], i)
				binary.LittleEndian.PutUint32(key[4:8], j)
				encodeTileInto(val, c)
				out.AppendKV(key[:], val)
			}
		},
		// 2*T^3 fused multiply-adds per tile pair.
		MapCost: core.CostModel{
			OpsPerRecord: 2 * spec.CostTile() * spec.CostTile() * spec.CostTile(),
			OpsPerByte:   0.25,
			OpsPerEmit:   30,
		},
		ReduceBatch: func(key []byte, values [][]byte, out *kv.Batch) {
			sum := make([]float32, t*t)
			for _, v := range values {
				// In-place decode-and-add; float32 addition order matches
				// the historical decode-then-add loop bit for bit.
				for x := range sum {
					sum[x] += math.Float32frombits(binary.LittleEndian.Uint32(v[x*4:]))
				}
			}
			val := make([]byte, tileBytes)
			encodeTileInto(val, sum)
			out.AppendKV(key, val)
		},
		// T^2 adds per partial tile.
		ReduceCost: core.CostModel{
			OpsPerRecord: 50,
			OpsPerValue:  spec.CostTile() * spec.CostTile(),
			OpsPerEmit:   30,
		},
	})
}

func encodeTile(t []float32) []byte {
	out := make([]byte, len(t)*4)
	encodeTileInto(out, t)
	return out
}

func encodeTileInto(out []byte, t []float32) {
	for i, v := range t {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
}

func decodeTile(b []byte, t int) []float32 {
	out := make([]float32, t*t)
	decodeTileInto(out, b)
	return out
}

func decodeTileInto(out []float32, b []byte) {
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
}

// MMData builds the MM input: one record per (i,j,k) tile-pair of the two
// generated matrices, plus the matrices themselves for verification.
func MMData(seed int64, spec MMSpec) (input []byte, a, b []float32, err error) {
	if spec.N%spec.Tile != 0 {
		return nil, nil, nil, fmt.Errorf("apps: N %d not divisible by tile %d", spec.N, spec.Tile)
	}
	a = workload.Matrix(seed, spec.N)
	b = workload.Matrix(seed+1, spec.N)
	nt := spec.Tiles()
	t := spec.Tile
	rec := make([]byte, spec.RecordSize())
	for i := 0; i < nt; i++ {
		for j := 0; j < nt; j++ {
			for k := 0; k < nt; k++ {
				binary.LittleEndian.PutUint32(rec[0:4], uint32(i))
				binary.LittleEndian.PutUint32(rec[4:8], uint32(j))
				binary.LittleEndian.PutUint32(rec[8:12], uint32(k))
				writeTile(rec[12:12+t*t*4], a, spec.N, i*t, k*t, t)
				writeTile(rec[12+t*t*4:], b, spec.N, k*t, j*t, t)
				input = append(input, rec...)
			}
		}
	}
	return input, a, b, nil
}

// writeTile serializes the t x t sub-matrix of m at (row, col).
func writeTile(dst []byte, m []float32, n, row, col, t int) {
	for r := 0; r < t; r++ {
		for c := 0; c < t; c++ {
			binary.LittleEndian.PutUint32(dst[(r*t+c)*4:], math.Float32bits(m[(row+r)*n+col+c]))
		}
	}
}

// VerifyMatMul checks output tiles against the reference product.
func VerifyMatMul(pairs []kv.Pair, a, b []float32, spec MMSpec) error {
	ref := workload.MatMulRef(a, b, spec.N)
	t := spec.Tile
	nt := spec.Tiles()
	seen := make(map[[2]uint32]bool)
	for _, pr := range pairs {
		if len(pr.Key) != 8 {
			return fmt.Errorf("apps: bad MM key length %d", len(pr.Key))
		}
		i := binary.LittleEndian.Uint32(pr.Key[0:4])
		j := binary.LittleEndian.Uint32(pr.Key[4:8])
		if seen[[2]uint32{i, j}] {
			return fmt.Errorf("apps: duplicate output tile (%d,%d)", i, j)
		}
		seen[[2]uint32{i, j}] = true
		tile := decodeTile(pr.Value, t)
		for r := 0; r < t; r++ {
			for c := 0; c < t; c++ {
				want := ref[(int(i)*t+r)*spec.N+int(j)*t+c]
				got := tile[r*t+c]
				if math.Abs(float64(got-want)) > 1e-3 {
					return fmt.Errorf("apps: C[%d,%d] = %g, want %g", int(i)*t+r, int(j)*t+c, got, want)
				}
			}
		}
	}
	if len(seen) != nt*nt {
		return fmt.Errorf("apps: %d output tiles, want %d", len(seen), nt*nt)
	}
	return nil
}
