package apps

import (
	"glasswing/internal/core"
	"glasswing/internal/kv"
	"glasswing/internal/workload"
)

// WordCount returns the WC application: word frequencies over wiki text.
// The dataset "exhibits high repetition of a smaller number of words beside
// a large number of sparse words" (§IV-A1), which is what makes the hash
// table contended and the combiner effective (Table II).
func WordCount() *core.App {
	return core.FinishBatchApp(&core.App{
		Name:             "WC",
		Parse:            parseLines,
		ParseCostPerByte: 1.5,
		// The batch kernel is the primary form: one invocation tokenizes a
		// whole chunk of lines into the output slab with no per-record
		// closure dispatch and no per-emit value allocation (the count
		// literal is a shared read-only constant copied into the slab).
		MapBatch: func(recs []kv.Pair, out *kv.Batch) {
			for _, rec := range recs {
				line := rec.Value
				start := -1
				for i := 0; i <= len(line); i++ {
					if i < len(line) && line[i] != ' ' && line[i] != '\t' {
						if start < 0 {
							start = i
						}
						continue
					}
					if start >= 0 {
						out.AppendKV(line[start:i], oneU32)
						start = -1
					}
				}
			}
		},
		// The WC kernel scans every byte, hashes each word and emits; it
		// performs "somewhat more computation than the PVC kernel"
		// (§IV-A1).
		MapCost:     core.CostModel{OpsPerRecord: 60, OpsPerByte: 10, OpsPerEmit: 25, OpsPerBatch: 400},
		Combine:     sumCounts,
		CombineCost: core.CostModel{OpsPerRecord: 25, OpsPerValue: 6, OpsPerEmit: 15},
		ReduceBatch: sumCountsBatch,
		ReduceCost:  core.CostModel{OpsPerRecord: 25, OpsPerValue: 6, OpsPerEmit: 15},
	})
}

// WCData builds a WC dataset of roughly size bytes and its reference word
// counts.
func WCData(seed int64, size, vocab int) ([]byte, map[string]uint64) {
	data := workload.WikiText(seed, size, vocab)
	return data, WCRef(data)
}

// WCRef computes the reference word counts for arbitrary text, using the
// same tokenization as the WC kernel (words separated by spaces, tabs and
// newlines). Verifiers use it when the input doesn't come from WCData —
// generated files, externally ingested datasets.
func WCRef(data []byte) map[string]uint64 {
	want := make(map[string]uint64)
	start := -1
	for i := 0; i <= len(data); i++ {
		if i < len(data) && data[i] != ' ' && data[i] != '\n' && data[i] != '\t' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			want[string(data[start:i])]++
			start = -1
		}
	}
	return want
}

// VerifyCounts checks engine output pairs against reference counts.
func VerifyCounts(pairs []kv.Pair, want map[string]uint64) error {
	got, err := CountsFromOutput(pairs)
	if err != nil {
		return err
	}
	return compareCounts(got, want)
}

func compareCounts(got, want map[string]uint64) error {
	if len(got) != len(want) {
		return countMismatch("distinct keys", uint64(len(got)), uint64(len(want)))
	}
	for k, n := range want {
		if got[k] != n {
			return countMismatch("key "+k, got[k], n)
		}
	}
	return nil
}

type countErr struct {
	what      string
	got, want uint64
}

func (e countErr) Error() string {
	return "apps: " + e.what + ": got " + itoa(e.got) + ", want " + itoa(e.want)
}

func countMismatch(what string, got, want uint64) error {
	return countErr{what: what, got: got, want: want}
}

func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
