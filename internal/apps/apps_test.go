package apps

import (
	"testing"

	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/gpmr"
	"glasswing/internal/hadoop"
	"glasswing/internal/hw"
	"glasswing/internal/sim"
	"glasswing/internal/workload"
)

// rig builds a small cluster with both HDFS and everything preloaded via fn.
func rig(nodes int, gpu bool, blockSize int64) (*sim.Env, *hw.Cluster, *dfs.DFS) {
	env := sim.NewEnv()
	cluster := hw.NewCluster(env, nodes, hw.Type1(gpu))
	d := dfs.New(cluster, blockSize, min(3, nodes))
	return env, cluster, d
}

func glasswingRun(t *testing.T, app *core.App, cluster *hw.Cluster, fs dfs.FS, cfg core.Config, prelude func(*sim.Proc, *hw.Cluster)) *core.Result {
	t.Helper()
	res, err := core.Run(&core.Runtime{Cluster: cluster, FS: fs, Prelude: prelude}, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWordCountAllEngines(t *testing.T) {
	data, want := WCData(1, 200<<10, 4000)
	blocks := dfs.SplitLines(data, 32<<10)

	t.Run("glasswing", func(t *testing.T) {
		_, cluster, d := rig(3, false, 32<<10)
		d.PreloadBlocks("wc", blocks, 0)
		res := glasswingRun(t, WordCount(), cluster, d, core.Config{
			Input: []string{"wc"}, Collector: core.HashTable, UseCombiner: true, Compress: true,
		}, nil)
		if err := VerifyCounts(res.Output(), want); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("hadoop", func(t *testing.T) {
		_, cluster, d := rig(3, false, 32<<10)
		d.PreloadBlocks("wc", blocks, 0)
		res, err := hadoop.Run(&hadoop.Runtime{Cluster: cluster, FS: d}, WordCount(),
			hadoop.Config{Input: []string{"wc"}, UseCombiner: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyCounts(res.Output(), want); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("gpmr", func(t *testing.T) {
		env := sim.NewEnv()
		cluster := hw.NewCluster(env, 3, hw.Type1(true))
		l := dfs.NewLocal(cluster, 32<<10)
		l.PreloadBlocks("wc", blocks, 0)
		res, err := gpmr.Run(&gpmr.Runtime{Cluster: cluster, FS: l}, WordCount(),
			gpmr.Config{Input: []string{"wc"}, PartialReduce: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyCounts(res.Output(), want); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPageviewCount(t *testing.T) {
	data, want := PVCData(2, 150<<10)
	_, cluster, d := rig(2, false, 32<<10)
	d.PreloadBlocks("pvc", dfs.SplitLines(data, 32<<10), 0)
	res := glasswingRun(t, PageviewCount(), cluster, d, core.Config{
		Input: []string{"pvc"}, Collector: core.HashTable, UseCombiner: true,
	}, nil)
	if err := VerifyCounts(res.Output(), want); err != nil {
		t.Fatal(err)
	}
	// PVC's defining property: nearly every key is unique, so the combiner
	// barely shrinks anything and the key space is massive.
	if len(want) < 1000 {
		t.Fatalf("PVC key space suspiciously small: %d", len(want))
	}
}

func TestTeraSortTotalOrder(t *testing.T) {
	data := TSData(3, 3000)
	blocks := dfs.SplitFixed(data, 16<<10, workload.TeraRecordSize)

	t.Run("glasswing", func(t *testing.T) {
		_, cluster, d := rig(4, false, 16<<10)
		d.PreloadBlocks("ts", blocks, 0)
		res := glasswingRun(t, TeraSort(), cluster, d, core.Config{
			Input: []string{"ts"}, Collector: core.BufferPool,
			Partitioner:       TeraPartitioner(data, 16),
			OutputReplication: 1,
		}, nil)
		if err := VerifyTeraSort(res.Output(), data); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("hadoop", func(t *testing.T) {
		_, cluster, d := rig(4, false, 16<<10)
		d.PreloadBlocks("ts", blocks, 0)
		res, err := hadoop.Run(&hadoop.Runtime{Cluster: cluster, FS: d}, TeraSort(),
			hadoop.Config{Input: []string{"ts"}, Partitioner: TeraPartitioner(data, 16), OutputReplication: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyTeraSort(res.Output(), data); err != nil {
			t.Fatal(err)
		}
	})
}

func TestKMeansAllEngines(t *testing.T) {
	data, spec := KMData(4, 6000, 4, 16)
	blocks := dfs.SplitFixed(data, 8<<10, int64(spec.Dim*4))
	app := KMeans(spec)

	t.Run("glasswing-cpu", func(t *testing.T) {
		_, cluster, d := rig(2, false, 8<<10)
		d.PreloadBlocks("km", blocks, 0)
		res := glasswingRun(t, app, cluster, d, core.Config{
			Input: []string{"km"}, Collector: core.HashTable, UseCombiner: true,
		}, spec.Prelude())
		if err := VerifyKMeans(res.Output(), data, spec); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("glasswing-gpu", func(t *testing.T) {
		_, cluster, d := rig(2, true, 8<<10)
		d.PreloadBlocks("km", blocks, 0)
		res := glasswingRun(t, app, cluster, d, core.Config{
			Input: []string{"km"}, Device: 1, Collector: core.HashTable, UseCombiner: true,
		}, spec.Prelude())
		if err := VerifyKMeans(res.Output(), data, spec); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("hadoop", func(t *testing.T) {
		_, cluster, d := rig(2, false, 8<<10)
		d.PreloadBlocks("km", blocks, 0)
		res, err := hadoop.Run(&hadoop.Runtime{Cluster: cluster, FS: d}, app,
			hadoop.Config{Input: []string{"km"}, UseCombiner: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyKMeans(res.Output(), data, spec); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("gpmr", func(t *testing.T) {
		env := sim.NewEnv()
		cluster := hw.NewCluster(env, 2, hw.Type1(true))
		l := dfs.NewLocal(cluster, 8<<10)
		l.PreloadBlocks("km", blocks, 0)
		res, err := gpmr.Run(&gpmr.Runtime{Cluster: cluster, FS: l}, app,
			gpmr.Config{Input: []string{"km"}, PartialReduce: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyKMeans(res.Output(), data, spec); err != nil {
			t.Fatal(err)
		}
	})
}

func TestMatMulAllEngines(t *testing.T) {
	spec := MMSpec{N: 64, Tile: 16}
	input, a, b, err := MMData(5, spec)
	if err != nil {
		t.Fatal(err)
	}
	blocks := dfs.SplitFixed(input, 32<<10, int64(spec.RecordSize()))
	app := MatMul(spec)

	t.Run("glasswing", func(t *testing.T) {
		_, cluster, d := rig(2, true, 32<<10)
		d.PreloadBlocks("mm", blocks, 0)
		res := glasswingRun(t, app, cluster, d, core.Config{
			Input: []string{"mm"}, Device: 1, Collector: core.BufferPool,
		}, nil)
		if err := VerifyMatMul(res.Output(), a, b, spec); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("hadoop", func(t *testing.T) {
		_, cluster, d := rig(2, false, 32<<10)
		d.PreloadBlocks("mm", blocks, 0)
		res, err := hadoop.Run(&hadoop.Runtime{Cluster: cluster, FS: d}, app,
			hadoop.Config{Input: []string{"mm"}})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyMatMul(res.Output(), a, b, spec); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("gpmr", func(t *testing.T) {
		env := sim.NewEnv()
		cluster := hw.NewCluster(env, 2, hw.Type1(true))
		l := dfs.NewLocal(cluster, 32<<10)
		l.PreloadBlocks("mm", blocks, 0)
		res, err := gpmr.Run(&gpmr.Runtime{Cluster: cluster, FS: l}, app,
			gpmr.Config{Input: []string{"mm"}})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyMatMul(res.Output(), a, b, spec); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTeraPartitionerMonotone(t *testing.T) {
	data := TSData(6, 2000)
	part := TeraPartitioner(data, 8)
	// Partition ids must be monotone in key order.
	var keys [][]byte
	for i := 0; i < 2000; i++ {
		keys = append(keys, data[i*workload.TeraRecordSize:i*workload.TeraRecordSize+10])
	}
	for n := 2; n <= 64; n *= 4 {
		// Check monotonicity over sorted keys.
		sorted := make([][]byte, len(keys))
		copy(sorted, keys)
		sortBytes(sorted)
		last := 0
		for _, k := range sorted {
			p := part(k, n)
			if p < last {
				t.Fatalf("partitioner not monotone: %d after %d (n=%d)", p, last, n)
			}
			if p < 0 || p >= n {
				t.Fatalf("partition %d out of range (n=%d)", p, n)
			}
			last = p
		}
	}
}

func sortBytes(b [][]byte) {
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && string(b[j]) < string(b[j-1]); j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}

func TestKMValueRoundTrip(t *testing.T) {
	sum := []float64{1.5, -2.25, 3.125}
	b := encodeKMValue(sum, 42)
	got, count, err := decodeKMValue(b, 3)
	if err != nil || count != 42 {
		t.Fatalf("decode: %v count=%d", err, count)
	}
	for i := range sum {
		if got[i] != sum[i] {
			t.Fatalf("dim %d: %g != %g", i, got[i], sum[i])
		}
	}
	if _, _, err := decodeKMValue(b, 4); err == nil {
		t.Fatal("wrong dim should error")
	}
}

func TestTileRoundTrip(t *testing.T) {
	tile := []float32{1, 2, 3, 4.5, -1, 0, 7, 8, 9}
	got := decodeTile(encodeTile(tile), 3)
	for i := range tile {
		if got[i] != tile[i] {
			t.Fatalf("tile[%d] = %g, want %g", i, got[i], tile[i])
		}
	}
}

// Ensure pair-volume stays sane: a KM run's intermediate data must be far
// smaller with the combiner than without.
func TestKMeansCombinerVolume(t *testing.T) {
	data, spec := KMData(8, 4000, 4, 8)
	blocks := dfs.SplitFixed(data, 8<<10, int64(spec.Dim*4))
	app := KMeans(spec)
	run := func(comb bool) *core.Result {
		_, cluster, d := rig(1, false, 8<<10)
		d.PreloadBlocks("km", blocks, 0)
		coll := core.BufferPool
		if comb {
			coll = core.HashTable
		}
		return glasswingRun(t, app, cluster, d, core.Config{
			Input: []string{"km"}, Collector: coll, UseCombiner: comb,
		}, nil)
	}
	with := run(true)
	without := run(false)
	if with.IntermediateBytes*4 > without.IntermediateBytes {
		t.Fatalf("combiner saved too little: %d vs %d", with.IntermediateBytes, without.IntermediateBytes)
	}
	if err := VerifyKMeans(with.Output(), data, spec); err != nil {
		t.Fatal(err)
	}
	if err := VerifyKMeans(without.Output(), data, spec); err != nil {
		t.Fatal(err)
	}
}
