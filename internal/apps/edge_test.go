package apps

import (
	"bytes"
	"strings"
	"testing"

	"glasswing/internal/core"
	"glasswing/internal/dfs"
	"glasswing/internal/kv"
	"glasswing/internal/native"
	"glasswing/internal/workload"
)

// countWords tokenizes exactly like the WC kernel (lines split on '\n',
// words split on ' ' and '\t') so each edge case carries its own reference.
func countWords(data []byte) map[string]uint64 {
	want := make(map[string]uint64)
	for _, line := range bytes.Split(data, []byte("\n")) {
		for _, w := range bytes.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' }) {
			want[string(w)]++
		}
	}
	return want
}

// TestWordCountEdgeCases drives WC through the native pipeline on degenerate
// and adversarial inputs: the shapes most likely to break chunking, the
// collector, or the spill path, and least likely to appear in the sized
// random datasets the benchmarks use.
func TestWordCountEdgeCases(t *testing.T) {
	giantWord := strings.Repeat("x", 64<<10) // one key bigger than the whole spill threshold
	cases := []struct {
		name string
		data string
		// blockSize 0 means one block holding all data (single chunk).
		blockSize int64
		cfg       native.Config
		wantSpill bool
	}{
		{name: "empty-input", data: ""},
		{name: "whitespace-only", data: "  \t \n \t\t \n\n   \n"},
		{name: "single-chunk", data: "to be or not to be that is the question\n"},
		{
			name:      "one-word-many-chunks",
			data:      strings.Repeat("lonely\n", 5000),
			blockSize: 2 << 10,
		},
		{
			name:      "all-identical-keys-combiner",
			data:      strings.Repeat("same same same same\n", 4000),
			blockSize: 4 << 10,
			cfg:       native.Config{Collector: core.HashTable, UseCombiner: true},
		},
		{
			name:      "key-larger-than-spill-threshold",
			data:      strings.Repeat(giantWord+" tiny\n", 8),
			blockSize: 80 << 10,
			cfg:       native.Config{CacheThreshold: 4 << 10},
			wantSpill: true,
		},
		{
			name: "non-ascii-text",
			data: "héllo wörld héllo\n日本語 テキスト 日本語\nnaïve café naïve\n nbsp-is-part-of-a-word\n",
		},
		{
			name:      "no-trailing-newline",
			data:      "alpha beta gamma",
			blockSize: 4,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			data := []byte(tc.data)
			var blocks [][]byte
			if tc.blockSize > 0 {
				blocks = dfs.SplitLines(data, tc.blockSize)
			} else if len(data) > 0 {
				blocks = [][]byte{data}
			}
			cfg := tc.cfg
			cfg.KernelWorkers = 4
			cfg.PartitionThreads = 2
			cfg.Partitions = 3
			if cfg.CacheThreshold > 0 {
				cfg.SpillDir = t.TempDir()
			}
			res, err := native.Run(WordCount(), blocks, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := countWords(data)
			if err := VerifyCounts(res.Output(), want); err != nil {
				t.Fatal(err)
			}
			if tc.wantSpill && res.SpillFiles == 0 {
				t.Fatal("expected the giant-key case to spill, but no spill files were written")
			}
		})
	}
}

// TestNativeWorkerCountStability asserts the worker-count property the
// conformance matrix samples, directly at the native API: the same job run
// with 1 vs 8 kernel workers (and 1 vs 4 partition threads) must produce
// pairwise-identical output — parallelism is pure execution geometry.
func TestNativeWorkerCountStability(t *testing.T) {
	data, want := WCData(11, 48<<10, 900)
	blocks := dfs.SplitLines(data, 6<<10)
	run := func(kw, pt int) []kv.Pair {
		res, err := native.Run(WordCount(), blocks, native.Config{
			KernelWorkers:    kw,
			PartitionThreads: pt,
			Partitions:       5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Output()
	}
	serial := run(1, 1)
	if err := VerifyCounts(serial, want); err != nil {
		t.Fatal(err)
	}
	wide := run(8, 4)
	if len(serial) != len(wide) {
		t.Fatalf("output size changed with worker count: %d vs %d pairs", len(serial), len(wide))
	}
	for i := range serial {
		if !bytes.Equal(serial[i].Key, wide[i].Key) || !bytes.Equal(serial[i].Value, wide[i].Value) {
			t.Fatalf("output pair %d differs between 1-worker and 8-worker runs", i)
		}
	}
}

// TestTeraSortEdgeCases covers the reduce-less path on degenerate record
// sets: empty input, a single record, and all-identical keys (every record
// lands in one partition and value-order tie-breaking decides the output).
func TestTeraSortEdgeCases(t *testing.T) {
	one := TSData(7, 1)
	dup := bytes.Repeat(one, 64) // 64 records, identical keys and values
	cases := []struct {
		name string
		data []byte
	}{
		{name: "empty-input", data: nil},
		{name: "single-record", data: one},
		{name: "all-identical-keys", data: dup},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var blocks [][]byte
			if len(tc.data) > 0 {
				blocks = dfs.SplitFixed(tc.data, 512, workload.TeraRecordSize)
			}
			res, err := native.Run(TeraSort(), blocks, native.Config{
				KernelWorkers:    2,
				PartitionThreads: 1,
				Partitions:       4,
				Collector:        core.BufferPool,
				Partitioner:      TeraPartitioner(tc.data, 4),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyTeraSort(res.Output(), tc.data); err != nil {
				t.Fatal(err)
			}
		})
	}
}
