package apps

import (
	"encoding/binary"
	"fmt"
	"math"

	"glasswing/internal/core"
	"glasswing/internal/hw"
	"glasswing/internal/kv"
	"glasswing/internal/sim"
	"glasswing/internal/workload"
)

// KMeansSpec configures K-Means: Dim-dimensional single-precision points
// clustered around K centers (§IV-A2 uses 1024 centers in 4 dimensions and
// an I/O-dominant 16-center variant for the unmodified-GPMR comparison).
type KMeansSpec struct {
	Dim     int
	Centers [][]float32
	// ModelCenters, when non-zero, is the center count the kernel cost
	// model charges for, independent of how many centers are actually
	// computed. The executed code path is identical — one distance
	// evaluation per (point, center) pair — so charging K_model while
	// executing K keeps the timing faithful to the paper's 1024-center
	// configuration while the real arithmetic stays laptop-sized
	// (substitution documented in DESIGN.md).
	ModelCenters int
}

// K returns the number of centers actually computed.
func (s KMeansSpec) K() int { return len(s.Centers) }

// CostK returns the center count used by the cost model.
func (s KMeansSpec) CostK() int {
	if s.ModelCenters > 0 {
		return s.ModelCenters
	}
	return len(s.Centers)
}

// CentersBytes is the broadcast payload (the DistributedCache analog).
func (s KMeansSpec) CentersBytes() int64 { return int64(s.K() * s.Dim * 4) }

// Prelude returns the job prelude that ships the centers to every node
// before the map phase (the Glasswing analog of Hadoop's DistributedCache).
func (s KMeansSpec) Prelude() func(p *sim.Proc, cl *hw.Cluster) {
	return func(p *sim.Proc, cl *hw.Cluster) {
		cl.Broadcast(p, cl.Nodes[0], s.CentersBytes())
	}
}

// KMeans returns one iteration of K-Means clustering (the paper's
// implementations "perform just one iteration since this shows the
// performance well for all frameworks", §IV-A2). The map kernel assigns
// each point to its nearest center and emits (center, point-sum+count);
// combine and reduce aggregate the sums; reduce emits the new centers.
//
// The kernel's cost model is K*Dim*3 ops per point — a multiply, a subtract
// and an add per coordinate per candidate center — which is what makes KM
// compute-bound and GPU-friendly (Fig 3).
func KMeans(spec KMeansSpec) *core.App {
	dim := spec.Dim
	recSize := dim * 4
	perPoint := float64(spec.CostK()*dim*3 + 8)
	agg := func(key []byte, values [][]byte, emit func(k, v []byte)) {
		sum := make([]float64, dim)
		count, err := kmAccumulate(values, dim, sum)
		if err != nil {
			panic(err)
		}
		emit(key, encodeKMValue(sum, count))
	}
	return core.FinishBatchApp(&core.App{
		Name:             "KM",
		Parse:            parseFixed(recSize),
		ParseCostPerByte: 0.3,
		// Batch kernel: the point, sum and value-encoding scratch buffers
		// are allocated once per chunk and reused across every record in
		// it — the per-record form allocated all three per point.
		MapBatch: func(recs []kv.Pair, out *kv.Batch) {
			point := make([]float32, dim)
			sum := make([]float64, dim)
			val := make([]byte, dim*8+8)
			var key [4]byte
			for _, rec := range recs {
				decodePointInto(point, rec.Value)
				best, bestDist := 0, math.Inf(1)
				for c, center := range spec.Centers {
					var dist float64
					for d := 0; d < dim; d++ {
						diff := float64(point[d] - center[d])
						dist += diff * diff
					}
					if dist < bestDist {
						best, bestDist = c, dist
					}
				}
				for d := 0; d < dim; d++ {
					sum[d] = float64(point[d])
				}
				binary.LittleEndian.PutUint32(key[:], uint32(best))
				encodeKMValueInto(val, sum, 1)
				out.AppendKV(key[:], val)
			}
		},
		MapCost:     core.CostModel{OpsPerRecord: perPoint, OpsPerByte: 0.5, OpsPerEmit: 20},
		Combine:     agg,
		CombineCost: core.CostModel{OpsPerRecord: 20, OpsPerValue: float64(dim + 4), OpsPerEmit: 15},
		ReduceBatch: func(key []byte, values [][]byte, out *kv.Batch) {
			sum := make([]float64, dim)
			count, err := kmAccumulate(values, dim, sum)
			if err != nil {
				panic(err)
			}
			// Same arithmetic as the historical agg-then-divide chain: the
			// intermediate encode/decode round trip was bit-exact, so
			// dividing the accumulated sums directly is too.
			center := make([]float64, dim)
			if count > 0 {
				for d := 0; d < dim; d++ {
					center[d] = sum[d] / float64(count)
				}
			}
			out.AppendKV(key, encodeKMValue(center, count))
		},
		ReduceCost: core.CostModel{OpsPerRecord: float64(2 * dim), OpsPerValue: float64(dim + 4), OpsPerEmit: 15},
	})
}

// kmAccumulate folds encoded (sum, count) values into sum (which the
// caller zeroes), decoding in place — no per-value allocation. Addition
// order matches the historical per-value decode loop exactly, keeping the
// float64 results bit-identical across engines.
func kmAccumulate(values [][]byte, dim int, sum []float64) (uint64, error) {
	var count uint64
	for _, v := range values {
		if len(v) != dim*8+8 {
			return 0, fmt.Errorf("apps: bad KM value length %d for dim %d", len(v), dim)
		}
		for d := 0; d < dim; d++ {
			sum[d] += math.Float64frombits(binary.LittleEndian.Uint64(v[d*8:]))
		}
		count += binary.LittleEndian.Uint64(v[dim*8:])
	}
	return count, nil
}

func decodePoint(b []byte, dim int) []float32 {
	p := make([]float32, dim)
	decodePointInto(p, b)
	return p
}

func decodePointInto(p []float32, b []byte) {
	for d := range p {
		p[d] = math.Float32frombits(binary.LittleEndian.Uint32(b[d*4 : d*4+4]))
	}
}

// encodeKMValue packs a float64 coordinate sum vector and a count.
func encodeKMValue(sum []float64, count uint64) []byte {
	out := make([]byte, len(sum)*8+8)
	encodeKMValueInto(out, sum, count)
	return out
}

func encodeKMValueInto(out []byte, sum []float64, count uint64) {
	for d, v := range sum {
		binary.LittleEndian.PutUint64(out[d*8:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint64(out[len(sum)*8:], count)
}

func decodeKMValue(b []byte, dim int) ([]float64, uint64, error) {
	if len(b) != dim*8+8 {
		return nil, 0, fmt.Errorf("apps: bad KM value length %d for dim %d", len(b), dim)
	}
	sum := make([]float64, dim)
	for d := 0; d < dim; d++ {
		sum[d] = math.Float64frombits(binary.LittleEndian.Uint64(b[d*8:]))
	}
	return sum, binary.LittleEndian.Uint64(b[dim*8:]), nil
}

// KMRef computes the reference one-iteration result: per center, the sum of
// assigned points and their count.
func KMRef(data []byte, spec KMeansSpec) map[uint32]struct {
	Sum   []float64
	Count uint64
} {
	dim := spec.Dim
	out := make(map[uint32]struct {
		Sum   []float64
		Count uint64
	})
	for off := 0; off+dim*4 <= len(data); off += dim * 4 {
		point := decodePoint(data[off:off+dim*4], dim)
		best, bestDist := 0, math.Inf(1)
		for c, center := range spec.Centers {
			var dist float64
			for d := 0; d < dim; d++ {
				diff := float64(point[d] - center[d])
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		e := out[uint32(best)]
		if e.Sum == nil {
			e.Sum = make([]float64, dim)
		}
		for d := 0; d < dim; d++ {
			e.Sum[d] += float64(point[d])
		}
		e.Count++
		out[uint32(best)] = e
	}
	return out
}

// VerifyKMeans checks engine output (new centers) against the reference.
func VerifyKMeans(pairs []kv.Pair, data []byte, spec KMeansSpec) error {
	ref := KMRef(data, spec)
	seen := 0
	for _, pr := range pairs {
		cid := binary.LittleEndian.Uint32(pr.Key)
		sum, count, err := decodeKMValue(pr.Value, spec.Dim)
		if err != nil {
			return err
		}
		want, ok := ref[cid]
		if !ok {
			return fmt.Errorf("apps: unexpected center %d in output", cid)
		}
		if count != want.Count {
			return fmt.Errorf("apps: center %d count %d, want %d", cid, count, want.Count)
		}
		for d := 0; d < spec.Dim; d++ {
			mean := want.Sum[d] / float64(want.Count)
			if math.Abs(sum[d]-mean) > 1e-6*math.Max(1, math.Abs(mean)) {
				return fmt.Errorf("apps: center %d dim %d = %g, want %g", cid, d, sum[d], mean)
			}
		}
		seen++
	}
	if seen != len(ref) {
		return fmt.Errorf("apps: %d centers in output, want %d", seen, len(ref))
	}
	return nil
}

// KMData builds a KM dataset: n points in dim dimensions drawn around k
// well-separated true clusters, with the job's initial centers taken from
// the first k points (so one iteration moves them measurably).
func KMData(seed int64, n, dim, k int) ([]byte, KMeansSpec) {
	data, _ := workload.Points(seed, n, dim, k)
	return data, KMeansSpec{Dim: dim, Centers: workload.InitialCenters(data, dim, k)}
}
