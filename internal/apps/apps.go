// Package apps implements the five MapReduce applications of the paper's
// evaluation (§IV): Pageview Count (PVC), WordCount (WC) and TeraSort (TS)
// as the I/O-bound set, K-Means clustering (KM) and Matrix Multiply (MM) as
// the compute-bound set. Each application provides the OpenCL-style kernels
// (as a core.App shared by all three engines), a deterministic dataset
// builder, and a verifier that checks engine output against an independent
// reference implementation.
package apps

import (
	"encoding/binary"
	"fmt"

	"glasswing/internal/kv"
)

// u32 encodes a little-endian uint32 (the count encoding all counting apps
// share; SequenceFile-style binary rather than text, as the paper's Hadoop
// ports use).
func u32(n uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], n)
	return b[:]
}

func decodeU32(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("apps: bad u32 length %d", len(b))
	}
	return binary.LittleEndian.Uint32(b), nil
}

// oneU32 is the shared count literal every counting app emits. It is
// read-only by contract: batch kernels hand it to Batch.AppendKV, which
// copies it into the slab.
var oneU32 = u32(1)

// sumCountsBatch is the shared count-summing reduce kernel in batch form:
// the total is encoded into stack scratch and copied into the output slab,
// so a reduction over a million keys allocates nothing per key.
func sumCountsBatch(key []byte, values [][]byte, out *kv.Batch) {
	var total uint32
	for _, v := range values {
		n, err := decodeU32(v)
		if err != nil {
			panic(err)
		}
		total += n
	}
	var enc [4]byte
	binary.LittleEndian.PutUint32(enc[:], total)
	out.AppendKV(key, enc[:])
}

// sumCounts is the per-record form of sumCountsBatch, kept handwritten
// (not shimmed) because it doubles as the combiner kernel, which runs once
// per distinct key per chunk inside the hash collector's hot loop.
func sumCounts(key []byte, values [][]byte, emit func(k, v []byte)) {
	var total uint32
	for _, v := range values {
		n, err := decodeU32(v)
		if err != nil {
			panic(err)
		}
		total += n
	}
	emit(key, u32(total))
}

// parseLines splits a text block into one record per non-empty line.
func parseLines(block []byte) []kv.Pair {
	var recs []kv.Pair
	start := 0
	for i := 0; i <= len(block); i++ {
		if i == len(block) || block[i] == '\n' {
			if i > start {
				recs = append(recs, kv.Pair{Value: block[start:i]})
			}
			start = i + 1
		}
	}
	return recs
}

// parseFixed splits a block into fixed-size records.
func parseFixed(size int) func(block []byte) []kv.Pair {
	return func(block []byte) []kv.Pair {
		n := len(block) / size
		recs := make([]kv.Pair, 0, n)
		for i := 0; i < n; i++ {
			recs = append(recs, kv.Pair{Value: block[i*size : (i+1)*size]})
		}
		return recs
	}
}

// CountsFromOutput folds (key, u32) output pairs into a map, summing
// duplicates (partial counts from different partitions).
func CountsFromOutput(pairs []kv.Pair) (map[string]uint64, error) {
	out := make(map[string]uint64)
	for _, pr := range pairs {
		n, err := decodeU32(pr.Value)
		if err != nil {
			return nil, fmt.Errorf("key %q: %w", pr.Key, err)
		}
		out[string(pr.Key)] += uint64(n)
	}
	return out, nil
}
