package apps

import (
	"bytes"
	"sort"

	"glasswing/internal/core"
	"glasswing/internal/kv"
	"glasswing/internal/workload"
)

// TeraSort returns the TS application: sorting 100-byte records by their
// 10-byte keys with total order across output partitions (§IV-A1). TS has
// no reduce function — output is fully processed by the end of the
// intermediate-data shuffle; the framework's per-partition merge produces
// the sorted runs.
func TeraSort() *core.App {
	return core.FinishBatchApp(&core.App{
		Name:             "TS",
		Parse:            parseFixed(workload.TeraRecordSize),
		ParseCostPerByte: 0.4,
		MapBatch: func(recs []kv.Pair, out *kv.Batch) {
			for _, rec := range recs {
				out.AppendKV(rec.Value[:10], rec.Value[10:])
			}
		},
		// The map kernel only slices the record and looks up the sampled
		// range partition.
		MapCost: core.CostModel{OpsPerRecord: 25, OpsPerByte: 0.5, OpsPerEmit: 40},
		Reduce:  nil,
	})
}

// TeraPartitioner builds a total-order range partitioner from a sample of
// the input, the paper's "input data set is sampled in an attempt to
// estimate the spread of keys" (§IV-A1). The returned function adapts to
// any partition count by quantile: keys are ranked against the sorted
// sample and mapped proportionally.
func TeraPartitioner(data []byte, sampleEvery int) func(key []byte, n int) int {
	return RangePartitioner(TeraSample(data, sampleEvery))
}

// TeraSample extracts every sampleEvery-th record's key from TeraGen data,
// sorted — the serializable core of the range partitioner, small enough to
// travel to remote workers that never see the full input.
func TeraSample(data []byte, sampleEvery int) [][]byte {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	var sample [][]byte
	for off := 0; off+workload.TeraRecordSize <= len(data); off += workload.TeraRecordSize * sampleEvery {
		sample = append(sample, data[off:off+10])
	}
	sort.Slice(sample, func(i, j int) bool { return bytes.Compare(sample[i], sample[j]) < 0 })
	return sample
}

// RangePartitioner builds a total-order partitioner over a sorted key
// sample: keys are ranked against the sample and mapped to partitions
// proportionally by quantile, adapting to any partition count.
func RangePartitioner(sample [][]byte) func(key []byte, n int) int {
	return func(key []byte, n int) int {
		if n <= 1 || len(sample) == 0 {
			return 0
		}
		// rank = number of sample keys <= key.
		rank := sort.Search(len(sample), func(i int) bool { return bytes.Compare(sample[i], key) > 0 })
		p := rank * n / (len(sample) + 1)
		if p >= n {
			p = n - 1
		}
		return p
	}
}

// TSData builds n TeraGen records.
func TSData(seed int64, n int) []byte { return workload.TeraGen(seed, n) }

// VerifyTeraSort checks that out contains exactly the input records in
// globally sorted key order.
func VerifyTeraSort(out []kv.Pair, input []byte) error {
	n := len(input) / workload.TeraRecordSize
	if len(out) != n {
		return countMismatch("records", uint64(len(out)), uint64(n))
	}
	for i := 1; i < len(out); i++ {
		if bytes.Compare(out[i-1].Key, out[i].Key) > 0 {
			return countMismatch("order violation at record", uint64(i), uint64(i))
		}
	}
	// Multiset equality via sorted reference.
	ref := make([][]byte, n)
	for i := 0; i < n; i++ {
		ref[i] = input[i*workload.TeraRecordSize : i*workload.TeraRecordSize+10]
	}
	sort.Slice(ref, func(i, j int) bool { return bytes.Compare(ref[i], ref[j]) < 0 })
	for i, pr := range out {
		if !bytes.Equal(pr.Key, ref[i]) {
			return countMismatch("key mismatch at record", uint64(i), uint64(i))
		}
		if len(pr.Value) != workload.TeraRecordSize-10 {
			return countMismatch("value size", uint64(len(pr.Value)), uint64(workload.TeraRecordSize-10))
		}
	}
	return nil
}
