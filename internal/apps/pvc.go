package apps

import (
	"bytes"

	"glasswing/internal/core"
	"glasswing/internal/kv"
	"glasswing/internal/workload"
)

// PageviewCount returns the PVC application: URL frequencies over web
// server logs. The kernel performs very little work per input record, so
// the job is I/O-bound; the logs are "highly sparse in that duplicate URLs
// are rare, so the volume of intermediate data is large, with a massive
// number of keys" (§IV-A1).
func PageviewCount() *core.App {
	return core.FinishBatchApp(&core.App{
		Name:             "PVC",
		Parse:            parseLines,
		ParseCostPerByte: 1.2,
		MapBatch: func(recs []kv.Pair, out *kv.Batch) {
			for _, rec := range recs {
				if url := logURL(rec.Value); url != nil {
					out.AppendKV(url, oneU32)
				}
			}
		},
		// Barely any work per record: find the URL field and emit.
		MapCost:     core.CostModel{OpsPerRecord: 40, OpsPerByte: 3, OpsPerEmit: 20},
		Combine:     sumCounts,
		CombineCost: core.CostModel{OpsPerRecord: 25, OpsPerValue: 6, OpsPerEmit: 15},
		ReduceBatch: sumCountsBatch,
		ReduceCost:  core.CostModel{OpsPerRecord: 25, OpsPerValue: 6, OpsPerEmit: 15},
	})
}

// logURL extracts the URL field (second whitespace-separated token) of a
// log line.
func logURL(line []byte) []byte {
	first := bytes.IndexByte(line, ' ')
	if first < 0 {
		return nil
	}
	rest := line[first+1:]
	end := bytes.IndexByte(rest, ' ')
	if end < 0 {
		end = len(rest)
	}
	if end == 0 {
		return nil
	}
	return rest[:end]
}

// PVCData builds a PVC log dataset of roughly size bytes and its reference
// URL counts.
func PVCData(seed int64, size int) ([]byte, map[string]uint64) {
	data := workload.WebLog(seed, size)
	want := make(map[string]uint64)
	for _, rec := range parseLines(data) {
		if url := logURL(rec.Value); url != nil {
			want[string(url)]++
		}
	}
	return data, want
}
