package dfs

import (
	"bytes"
	"testing"
)

func TestRealFSRoundTrip(t *testing.T) {
	_, c := testCluster(4)
	r, err := NewReal(c, t.TempDir(), 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("payload "), 320) // 2560 bytes -> 3 blocks
	f := r.Preload("in", data, 0)
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(f.Blocks))
	}
	got, err := r.Open("in")
	if err != nil || got != f {
		t.Fatalf("Open: %v", err)
	}
	if _, err := r.Open("missing"); err == nil {
		t.Fatal("Open of missing file should error")
	}

	var back []byte
	for i := range f.Blocks {
		b, err := r.ReadBlock(nil, c.Nodes[0], f, i)
		if err != nil {
			t.Fatalf("ReadBlock(%d): %v", i, err)
		}
		back = append(back, b...)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("read-back bytes diverge from written bytes")
	}
}

func TestRealFSLocality(t *testing.T) {
	_, c := testCluster(4)
	r, err := NewReal(c, t.TempDir(), 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("x"), 400) // 4 blocks, one first-replica per node
	f := r.Preload("in", data, 0)

	// Block i's replicas sit on nodes i and i+1 (mod 4): node 0 holds
	// blocks 0 and 3 — local — but not block 2.
	if !r.LocalTo(f, 0, c.Nodes[0]) || !r.LocalTo(f, 3, c.Nodes[0]) {
		t.Fatal("expected blocks 0 and 3 local to node 0")
	}
	if r.LocalTo(f, 2, c.Nodes[0]) {
		t.Fatal("block 2 should not be local to node 0")
	}

	if _, err := r.ReadBlock(nil, c.Nodes[0], f, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBlock(nil, c.Nodes[0], f, 2); err != nil {
		t.Fatal(err)
	}
	if l, rm := r.ReadsLocal.Load(), r.ReadsRemote.Load(); l != 1 || rm != 1 {
		t.Fatalf("locality counters local=%d remote=%d, want 1/1", l, rm)
	}
}

func TestRealFSWriterFirstPlacement(t *testing.T) {
	_, c := testCluster(3)
	r, err := NewReal(c, t.TempDir(), 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.Write(nil, c.Nodes[2], "out", []byte("result"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Blocks[0].Locations[0] != c.Nodes[2] {
		t.Fatal("first replica must land on the writer")
	}
	if !r.LocalTo(f, 0, c.Nodes[2]) {
		t.Fatal("writer should hold its own block")
	}
}

func TestRealFSSurvivesReplicaLoss(t *testing.T) {
	_, c := testCluster(3)
	dir := t.TempDir()
	r, err := NewReal(c, dir, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := r.Preload("in", []byte("hello"), 0)
	// Lose the first replica (node 0's store); the read must fall through
	// to the surviving holder.
	if err := r.stores[0].Remove(r.ids["in"][0]); err != nil {
		t.Fatal(err)
	}
	b, err := r.ReadBlock(nil, c.Nodes[0], f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte("hello")) {
		t.Fatal("fallback read returned wrong bytes")
	}
	if r.ReadsRemote.Load() != 1 {
		t.Fatal("fallback read should count remote")
	}
}
