package dfs

import (
	"fmt"

	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

// LocalFS models the data layout GPMR's published experiments use and the
// paper adopts for the GPMR comparison (§IV-A): every input file is fully
// replicated on the local file system of every node, so every read is a
// local disk read. Writes land only on the writer's disk.
type LocalFS struct {
	Cluster   *hw.Cluster
	BlockSize int64
	files     map[string]*File
}

// NewLocal creates a local file system with the given logical block size
// (blocks only control split granularity; all blocks are everywhere).
func NewLocal(cluster *hw.Cluster, blockSize int64) *LocalFS {
	if blockSize <= 0 {
		panic("dfs: block size must be positive")
	}
	return &LocalFS{Cluster: cluster, BlockSize: blockSize, files: make(map[string]*File)}
}

// Name implements FS.
func (l *LocalFS) Name() string { return "localFS" }

// Open implements FS.
func (l *LocalFS) Open(name string) (*File, error) {
	f, ok := l.files[name]
	if !ok {
		return nil, fmt.Errorf("localfs: no such file %q", name)
	}
	return f, nil
}

func (l *LocalFS) split(data []byte) [][]byte {
	var chunks [][]byte
	for off := int64(0); off < int64(len(data)); off += l.BlockSize {
		end := off + l.BlockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		chunks = append(chunks, data[off:end])
	}
	if len(chunks) == 0 {
		chunks = [][]byte{nil}
	}
	return chunks
}

// Preload stores a file on every node without charging virtual time.
func (l *LocalFS) Preload(name string, data []byte, _ int) *File {
	f := &File{FileName: name, Size: int64(len(data))}
	for i, c := range l.split(data) {
		f.Blocks = append(f.Blocks, &Block{Index: i, Data: c, Locations: l.Cluster.Nodes})
	}
	l.files[name] = f
	return f
}

// PreloadBlocks stores a file from pre-split blocks on every node without
// charging virtual time.
func (l *LocalFS) PreloadBlocks(name string, blocks [][]byte, _ int) *File {
	f := &File{FileName: name}
	for i, c := range blocks {
		f.Size += int64(len(c))
		f.Blocks = append(f.Blocks, &Block{Index: i, Data: c, Locations: l.Cluster.Nodes})
	}
	if len(f.Blocks) == 0 {
		f.Blocks = []*Block{{Index: 0, Locations: l.Cluster.Nodes}}
	}
	l.files[name] = f
	return f
}

// LocalTo implements FS: always true — full replication.
func (l *LocalFS) LocalTo(*File, int, *hw.Node) bool { return true }

// ReadBlock implements FS: a plain local disk read, no JNI, no network.
func (l *LocalFS) ReadBlock(p *sim.Proc, reader *hw.Node, f *File, idx int) ([]byte, error) {
	if idx < 0 || idx >= len(f.Blocks) {
		return nil, fmt.Errorf("localfs: block %d out of range for %q", idx, f.FileName)
	}
	b := f.Blocks[idx]
	reader.Disk.Read(p, int64(len(b.Data)))
	return b.Data, nil
}

// Write implements FS: one local disk write; replication is ignored.
func (l *LocalFS) Write(p *sim.Proc, writer *hw.Node, name string, data []byte, _ int) (*File, error) {
	f := &File{FileName: name, Size: int64(len(data))}
	for i, c := range l.split(data) {
		f.Blocks = append(f.Blocks, &Block{Index: i, Data: c, Locations: []*hw.Node{writer}})
		writer.Disk.Write(p, int64(len(c)))
	}
	l.files[name] = f
	return f, nil
}

// Preloader is implemented by file systems that can install datasets with
// no virtual-time cost (experiment setup).
type Preloader interface {
	FS
	Preload(name string, data []byte, replication int) *File
	PreloadBlocks(name string, blocks [][]byte, replication int) *File
}

// SplitLines chops data into blocks of roughly blockSize bytes, cutting only
// at newline boundaries so no text record straddles a split.
func SplitLines(data []byte, blockSize int64) [][]byte {
	var blocks [][]byte
	for int64(len(data)) > blockSize {
		cut := blockSize
		for cut < int64(len(data)) && data[cut-1] != '\n' {
			cut++
		}
		blocks = append(blocks, data[:cut])
		data = data[cut:]
	}
	if len(data) > 0 || len(blocks) == 0 {
		blocks = append(blocks, data)
	}
	return blocks
}

// SplitFixed chops data into blocks of the largest multiple of recordSize
// not exceeding blockSize, so fixed-size records never straddle a split.
func SplitFixed(data []byte, blockSize, recordSize int64) [][]byte {
	if recordSize <= 0 {
		panic("dfs: record size must be positive")
	}
	per := blockSize / recordSize * recordSize
	if per == 0 {
		per = recordSize
	}
	var blocks [][]byte
	for int64(len(data)) > per {
		blocks = append(blocks, data[:per])
		data = data[per:]
	}
	if len(data) > 0 || len(blocks) == 0 {
		blocks = append(blocks, data)
	}
	return blocks
}

var (
	_ Preloader = (*DFS)(nil)
	_ Preloader = (*LocalFS)(nil)
)
