// Package dfs provides the file-system substrates the paper's evaluation
// runs on: a simulated HDFS (namenode metadata, block placement with a
// configurable replication factor, locality-aware reads, pipelined
// replicated writes, and a libhdfs/JNI access-cost mode) and a plain
// node-local file system (the layout GPMR's published experiments use, with
// every input file fully replicated on every node).
//
// File *contents* are real bytes held in memory; only the I/O *timing* is
// simulated, charged against the disk, NIC and CPU models in package hw.
package dfs

import (
	"fmt"
	"math/rand"

	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

// FS is the interface MapReduce engines program against.
type FS interface {
	// Open resolves a file by name.
	Open(name string) (*File, error)
	// ReadBlock reads block idx of f from reader, charging I/O time to p.
	ReadBlock(p *sim.Proc, reader *hw.Node, f *File, idx int) ([]byte, error)
	// Write stores data under name from writer with the given replication
	// factor (ignored by local file systems), charging I/O time to p.
	Write(p *sim.Proc, writer *hw.Node, name string, data []byte, replication int) (*File, error)
	// LocalTo reports whether block idx of f has a replica on n.
	LocalTo(f *File, idx int, n *hw.Node) bool
	// Name identifies the file system in reports ("HDFS", "localFS").
	Name() string
}

// File is an immutable stored file, split into blocks.
type File struct {
	FileName string
	Size     int64
	Blocks   []*Block
}

// Block is one replicated chunk of a file.
type Block struct {
	Index     int
	Data      []byte
	Locations []*hw.Node
}

// JNICost models the libhdfs access path Glasswing uses (Hadoop's bundled
// JNI bridge to the Java HDFS client): a fixed cost per call plus a per-byte
// cost for the extra Java<->native copy. The paper names this the dominant
// HDFS overhead (§IV-A2, MM discussion).
type JNICost struct {
	// PerCallSecs is the fixed Java/native switch cost per libhdfs call,
	// charged as wall time (it does not scale with data or hardware).
	PerCallSecs float64
	// PerByteOps is the extra Java<->native copy, charged as CPU work.
	PerByteOps float64
}

// DefaultJNI is calibrated so HDFS access turns GPU MM I/O-bound while the
// local FS keeps it compute-bound, as in Fig 3(d).
var DefaultJNI = JNICost{PerCallSecs: 60e-6, PerByteOps: 1.5}

// DFS is the simulated HDFS.
type DFS struct {
	Cluster     *hw.Cluster
	BlockSize   int64
	Replication int
	// JNI, when non-zero, charges libhdfs bridge costs on every access
	// (set for Glasswing, which reaches HDFS through libhdfs; Hadoop's own
	// Java client pays its costs inside the hadoop framework model).
	JNI JNICost

	files map[string]*File
	rng   *rand.Rand
}

// New creates an HDFS over cluster with the given block size and default
// replication factor (the paper uses 3).
func New(cluster *hw.Cluster, blockSize int64, replication int) *DFS {
	if blockSize <= 0 {
		panic("dfs: block size must be positive")
	}
	if replication < 1 {
		replication = 1
	}
	if replication > len(cluster.Nodes) {
		replication = len(cluster.Nodes)
	}
	return &DFS{
		Cluster:     cluster,
		BlockSize:   blockSize,
		Replication: replication,
		files:       make(map[string]*File),
		rng:         rand.New(rand.NewSource(42)),
	}
}

// Name implements FS.
func (d *DFS) Name() string { return "HDFS" }

// Open implements FS.
func (d *DFS) Open(name string) (*File, error) {
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", name)
	}
	return f, nil
}

// Exists reports whether a file is stored.
func (d *DFS) Exists(name string) bool { _, ok := d.files[name]; return ok }

// split chops data into BlockSize chunks.
func (d *DFS) split(data []byte) [][]byte {
	var chunks [][]byte
	for off := int64(0); off < int64(len(data)); off += d.BlockSize {
		end := off + d.BlockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		chunks = append(chunks, data[off:end])
	}
	if len(chunks) == 0 {
		chunks = [][]byte{nil}
	}
	return chunks
}

// placement picks replica nodes: the writer first (when given), then
// distinct pseudo-random nodes, matching HDFS's placement policy closely
// enough for locality statistics.
func (d *DFS) placement(writer *hw.Node, repl int) []*hw.Node {
	nodes := d.Cluster.Nodes
	if repl > len(nodes) {
		repl = len(nodes)
	}
	used := make(map[int]bool)
	var out []*hw.Node
	if writer != nil {
		out = append(out, writer)
		used[writer.ID] = true
	}
	for len(out) < repl {
		n := nodes[d.rng.Intn(len(nodes))]
		if !used[n.ID] {
			used[n.ID] = true
			out = append(out, n)
		}
	}
	return out
}

// Preload stores a file without charging any virtual time: experiment setup
// (the datasets exist before the measured job starts; the paper purges the
// page cache but not the files).
func (d *DFS) Preload(name string, data []byte, replication int) *File {
	if replication <= 0 {
		replication = d.Replication
	}
	chunks := d.split(data)
	f := &File{FileName: name, Size: int64(len(data))}
	for i, c := range chunks {
		// Spread first replicas round-robin so map work is spreadable.
		first := d.Cluster.Nodes[i%len(d.Cluster.Nodes)]
		locs := d.placement(first, replication)
		f.Blocks = append(f.Blocks, &Block{Index: i, Data: c, Locations: locs})
	}
	d.files[name] = f
	return f
}

// PreloadBlocks stores a file from pre-split blocks without charging
// virtual time. Callers use it when splits must respect record boundaries
// (text lines, fixed-size records), which is what Hadoop's input formats
// arrange on real HDFS.
func (d *DFS) PreloadBlocks(name string, blocks [][]byte, replication int) *File {
	if replication <= 0 {
		replication = d.Replication
	}
	f := &File{FileName: name}
	for i, c := range blocks {
		f.Size += int64(len(c))
		first := d.Cluster.Nodes[i%len(d.Cluster.Nodes)]
		locs := d.placement(first, replication)
		f.Blocks = append(f.Blocks, &Block{Index: i, Data: c, Locations: locs})
	}
	if len(f.Blocks) == 0 {
		f.Blocks = []*Block{{Index: 0, Locations: d.placement(d.Cluster.Nodes[0], replication)}}
	}
	d.files[name] = f
	return f
}

// LocalTo implements FS.
func (d *DFS) LocalTo(f *File, idx int, n *hw.Node) bool {
	for _, loc := range f.Blocks[idx].Locations {
		if loc == n {
			return true
		}
	}
	return false
}

// chargeJNI bills the libhdfs bridge cost for nbytes moved in one call.
func (d *DFS) chargeJNI(p *sim.Proc, reader *hw.Node, nbytes int64) {
	if d.JNI.PerCallSecs == 0 && d.JNI.PerByteOps == 0 {
		return
	}
	p.Delay(d.JNI.PerCallSecs)
	reader.HostWork(p, d.JNI.PerByteOps*float64(nbytes), 1)
}

// ReadBlock implements FS: a local replica costs one disk read; a remote
// read costs the remote disk plus a network transfer.
func (d *DFS) ReadBlock(p *sim.Proc, reader *hw.Node, f *File, idx int) ([]byte, error) {
	if idx < 0 || idx >= len(f.Blocks) {
		return nil, fmt.Errorf("dfs: block %d out of range for %q (%d blocks)", idx, f.FileName, len(f.Blocks))
	}
	b := f.Blocks[idx]
	n := int64(len(b.Data))
	if d.LocalTo(f, idx, reader) {
		reader.Disk.Read(p, n)
	} else {
		src := b.Locations[0]
		src.Disk.Read(p, n)
		d.Cluster.Transfer(p, src, reader, n)
	}
	d.chargeJNI(p, reader, n)
	return b.Data, nil
}

// Write implements FS: the write is pipelined to all replicas concurrently,
// so elapsed time is the slowest leg (local disk, or transfer+disk on the
// replica nodes).
func (d *DFS) Write(p *sim.Proc, writer *hw.Node, name string, data []byte, replication int) (*File, error) {
	if replication <= 0 {
		replication = d.Replication
	}
	chunks := d.split(data)
	f := &File{FileName: name, Size: int64(len(data))}
	env := d.Cluster.Env
	for i, c := range chunks {
		locs := d.placement(writer, replication)
		f.Blocks = append(f.Blocks, &Block{Index: i, Data: c, Locations: locs})
		n := int64(len(c))
		d.chargeJNI(p, writer, n)
		var sigs []*sim.Signal
		for _, loc := range locs {
			loc := loc
			done := sim.NewSignal(env)
			sigs = append(sigs, done)
			env.Spawn(p.Name+"/dfs-write", func(q *sim.Proc) {
				if loc != writer {
					d.Cluster.Transfer(q, writer, loc, n)
				}
				loc.Disk.Write(q, n)
				done.Fire(nil)
			})
		}
		sim.WaitAll(p, sigs...)
	}
	d.files[name] = f
	return f, nil
}

// TotalBlocks returns the number of blocks in a file.
func TotalBlocks(f *File) int { return len(f.Blocks) }
