package dfs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

func testCluster(n int) (*sim.Env, *hw.Cluster) {
	env := sim.NewEnv()
	return env, hw.NewCluster(env, n, hw.Type1(false))
}

func TestPreloadSplitsIntoBlocks(t *testing.T) {
	_, c := testCluster(4)
	d := New(c, 1000, 3)
	data := bytes.Repeat([]byte("x"), 2500)
	f := d.Preload("in", data, 0)
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(f.Blocks))
	}
	if len(f.Blocks[0].Data) != 1000 || len(f.Blocks[2].Data) != 500 {
		t.Fatalf("block sizes wrong: %d, %d", len(f.Blocks[0].Data), len(f.Blocks[2].Data))
	}
	for _, b := range f.Blocks {
		if len(b.Locations) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", b.Index, len(b.Locations))
		}
		seen := map[int]bool{}
		for _, n := range b.Locations {
			if seen[n.ID] {
				t.Fatalf("block %d replicated twice on node %d", b.Index, n.ID)
			}
			seen[n.ID] = true
		}
	}
	got, err := d.Open("in")
	if err != nil || got != f {
		t.Fatalf("Open: %v", err)
	}
	if _, err := d.Open("missing"); err == nil {
		t.Fatal("Open of missing file should error")
	}
}

func TestReplicationCappedAtClusterSize(t *testing.T) {
	_, c := testCluster(2)
	d := New(c, 1<<20, 3)
	f := d.Preload("in", []byte("abc"), 0)
	if len(f.Blocks[0].Locations) != 2 {
		t.Fatalf("replicas = %d, want 2 on a 2-node cluster", len(f.Blocks[0].Locations))
	}
}

func TestLocalReadChargesDiskOnly(t *testing.T) {
	env, c := testCluster(4)
	d := New(c, 1<<30, len(c.Nodes)) // one block, replicated everywhere
	data := bytes.Repeat([]byte("y"), 100<<20)
	f := d.Preload("in", data, 0)
	var end float64
	var got []byte
	env.Spawn("r", func(p *sim.Proc) {
		b, err := d.ReadBlock(p, c.Nodes[0], f, 0)
		if err != nil {
			t.Error(err)
		}
		got = b
		end = p.Now()
	})
	env.Run()
	want := float64(100<<20)/hw.RAID2x1TB.BW + hw.RAID2x1TB.SeekTime
	if end < want*0.99 || end > want*1.05 {
		t.Fatalf("local read took %g, want ~%g", end, want)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read returned wrong bytes")
	}
}

func TestRemoteReadSlowerThanLocal(t *testing.T) {
	timeFor := func(repl int, readerID int) float64 {
		env, c := testCluster(4)
		d := New(c, 1<<30, repl)
		data := bytes.Repeat([]byte("z"), 50<<20)
		f := d.Preload("in", data, repl)
		reader := c.Nodes[readerID]
		// Pick a reader with or without a local replica.
		if repl == len(c.Nodes) && !d.LocalTo(f, 0, reader) {
			t.Fatal("expected local replica")
		}
		var end float64
		env.Spawn("r", func(p *sim.Proc) {
			if _, err := d.ReadBlock(p, reader, f, 0); err != nil {
				t.Error(err)
			}
			end = p.Now()
		})
		env.Run()
		return end
	}
	local := timeFor(4, 0)
	// With replication 1, block 0 lives only on node 0; read from node 3.
	env, c := testCluster(4)
	d := New(c, 1<<30, 1)
	f := d.Preload("in", bytes.Repeat([]byte("z"), 50<<20), 1)
	var remoteEnd float64
	reader := c.Nodes[3]
	if d.LocalTo(f, 0, reader) {
		t.Fatal("expected remote block")
	}
	env.Spawn("r", func(p *sim.Proc) {
		if _, err := d.ReadBlock(p, reader, f, 0); err != nil {
			t.Error(err)
		}
		remoteEnd = p.Now()
	})
	env.Run()
	if remoteEnd <= local {
		t.Fatalf("remote read (%g) should cost more than local (%g)", remoteEnd, local)
	}
}

func TestJNICostCharged(t *testing.T) {
	read := func(jni JNICost) float64 {
		env, c := testCluster(1)
		d := New(c, 1<<20, 1)
		d.JNI = jni
		f := d.Preload("in", bytes.Repeat([]byte("a"), 20<<20), 1)
		var end float64
		env.Spawn("r", func(p *sim.Proc) {
			for i := range f.Blocks {
				if _, err := d.ReadBlock(p, c.Nodes[0], f, i); err != nil {
					t.Error(err)
				}
			}
			end = p.Now()
		})
		env.Run()
		return end
	}
	plain := read(JNICost{})
	jni := read(DefaultJNI)
	if jni <= plain {
		t.Fatalf("JNI mode (%g) should cost more than plain (%g)", jni, plain)
	}
}

func TestWritePipelinedReplication(t *testing.T) {
	env, c := testCluster(4)
	d := New(c, 1<<30, 3)
	data := bytes.Repeat([]byte("w"), 20<<20)
	var end1, end3 float64
	env.Spawn("w3", func(p *sim.Proc) {
		if _, err := d.Write(p, c.Nodes[0], "out3", data, 3); err != nil {
			t.Error(err)
		}
		end3 = p.Now()
	})
	env.Run()
	env2, c2 := testCluster(4)
	d2 := New(c2, 1<<30, 3)
	env2.Spawn("w1", func(p *sim.Proc) {
		if _, err := d2.Write(p, c2.Nodes[0], "out1", data, 1); err != nil {
			t.Error(err)
		}
		end1 = p.Now()
	})
	env2.Run()
	if end3 <= end1 {
		t.Fatalf("3-way replicated write (%g) should cost more than 1-way (%g)", end3, end1)
	}
	// But pipelining means 3x replication is far less than 3x the cost.
	if end3 > 2.5*end1 {
		t.Fatalf("replicated write not pipelined: %g vs %g", end3, end1)
	}
	f, err := d.Open("out3")
	if err != nil || f.Size != int64(len(data)) {
		t.Fatalf("written file wrong: %v %+v", err, f)
	}
}

func TestLocalFSFullyReplicated(t *testing.T) {
	env, c := testCluster(4)
	l := NewLocal(c, 1000)
	data := bytes.Repeat([]byte("q"), 3000)
	f := l.Preload("in", data, 0)
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	for _, n := range c.Nodes {
		if !l.LocalTo(f, 0, n) {
			t.Fatalf("block should be local to node %d", n.ID)
		}
	}
	var got []byte
	env.Spawn("r", func(p *sim.Proc) {
		b, err := l.ReadBlock(p, c.Nodes[3], f, 1)
		if err != nil {
			t.Error(err)
		}
		got = b
	})
	env.Run()
	if !bytes.Equal(got, data[1000:2000]) {
		t.Fatal("wrong block contents")
	}
}

func TestLocalFSWrite(t *testing.T) {
	env, c := testCluster(2)
	l := NewLocal(c, 1<<20)
	env.Spawn("w", func(p *sim.Proc) {
		if _, err := l.Write(p, c.Nodes[1], "out", []byte("hello"), 3); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	f, err := l.Open("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks[0].Locations) != 1 || f.Blocks[0].Locations[0] != c.Nodes[1] {
		t.Fatal("local write must land on the writer only")
	}
}

func TestEmptyFile(t *testing.T) {
	_, c := testCluster(2)
	d := New(c, 1<<20, 1)
	f := d.Preload("empty", nil, 0)
	if len(f.Blocks) != 1 || len(f.Blocks[0].Data) != 0 {
		t.Fatalf("empty file should have one empty block, got %d", len(f.Blocks))
	}
}

func TestQuickPreloadConservesBytes(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, blockRaw uint16, repl uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(sizeRaw) + 1
		blockSize := int64(blockRaw%8000) + 64
		data := make([]byte, size)
		rng.Read(data)
		_, c := testCluster(1 + int(repl%6))
		d := New(c, blockSize, int(repl%4)+1)
		f1 := d.Preload("f", data, 0)
		var got []byte
		for _, b := range f1.Blocks {
			got = append(got, b.Data...)
		}
		if !bytes.Equal(got, data) {
			return false
		}
		// Every block within the block size, every replica set non-empty.
		for _, b := range f1.Blocks {
			if int64(len(b.Data)) > blockSize || len(b.Locations) == 0 {
				return false
			}
		}
		return f1.Size == int64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadLocalityFraction(t *testing.T) {
	// With replication 3 on 8 nodes and round-robin first replicas, a
	// reader that owns a replica must exist for every block, and roughly
	// 3/8 of blocks should be local to any fixed node.
	_, c := testCluster(8)
	d := New(c, 1000, 3)
	data := bytes.Repeat([]byte("x"), 64000) // 64 blocks
	f := d.Preload("in", data, 0)
	local := 0
	for i := range f.Blocks {
		if d.LocalTo(f, i, c.Nodes[0]) {
			local++
		}
	}
	frac := float64(local) / float64(len(f.Blocks))
	if frac < 0.15 || frac > 0.70 {
		t.Fatalf("locality fraction %0.2f implausible for 3/8 replication", frac)
	}
}

func TestWriteCreatesReadableFile(t *testing.T) {
	env, c := testCluster(4)
	d := New(c, 4<<10, 3)
	data := bytes.Repeat([]byte("w"), 10<<10) // 3 blocks
	var got []byte
	env.Spawn("wr", func(p *sim.Proc) {
		f, err := d.Write(p, c.Nodes[1], "out", data, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if len(f.Blocks) != 3 {
			t.Errorf("blocks = %d", len(f.Blocks))
		}
		for i := range f.Blocks {
			// The writer always holds a replica: reads from it are local.
			if !d.LocalTo(f, i, c.Nodes[1]) {
				t.Errorf("block %d not local to writer", i)
			}
			b, err := d.ReadBlock(p, c.Nodes[1], f, i)
			if err != nil {
				t.Error(err)
			}
			got = append(got, b...)
		}
	})
	env.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("written data does not read back")
	}
	if !d.Exists("out") {
		t.Fatal("Exists should see the written file")
	}
}

func TestWriteRemoteReplicasChargeNetwork(t *testing.T) {
	// A replicated write must take longer than replication-1 because of
	// the remote legs, but writes are pipelined so not 3x.
	write := func(repl int) float64 {
		env, c := testCluster(4)
		d := New(c, 1<<30, 3)
		var end float64
		env.Spawn("w", func(p *sim.Proc) {
			if _, err := d.Write(p, c.Nodes[0], "o", bytes.Repeat([]byte("x"), 30<<20), repl); err != nil {
				t.Error(err)
			}
			end = p.Now()
		})
		env.Run()
		return end
	}
	if w3, w1 := write(3), write(1); w3 <= w1 || w3 > 2.5*w1 {
		t.Fatalf("replicated write timing off: repl3=%g repl1=%g", w3, w1)
	}
}

func TestReadBlockOutOfRange(t *testing.T) {
	env, c := testCluster(1)
	d := New(c, 1<<20, 1)
	f := d.Preload("in", []byte("abc"), 0)
	l := NewLocal(c, 1<<20)
	lf := l.Preload("in", []byte("abc"), 0)
	env.Spawn("r", func(p *sim.Proc) {
		if _, err := d.ReadBlock(p, c.Nodes[0], f, 5); err == nil {
			t.Error("HDFS out-of-range read should fail")
		}
		if _, err := l.ReadBlock(p, c.Nodes[0], lf, -1); err == nil {
			t.Error("local out-of-range read should fail")
		}
	})
	env.Run()
}

func TestFSNames(t *testing.T) {
	_, c := testCluster(1)
	if New(c, 1<<20, 1).Name() != "HDFS" {
		t.Error("DFS name")
	}
	if NewLocal(c, 1<<20).Name() != "localFS" {
		t.Error("localFS name")
	}
}

func TestSplitHelpers(t *testing.T) {
	text := []byte("aaa\nbb\ncccc\ndd\n")
	blocks := SplitLines(text, 5)
	var total int
	for _, b := range blocks {
		total += len(b)
		if len(b) > 0 && b[len(b)-1] != '\n' && total != len(text) {
			t.Fatalf("block %q does not end at a line boundary", b)
		}
	}
	if total != len(text) {
		t.Fatalf("SplitLines lost bytes: %d != %d", total, len(text))
	}
	fixed := SplitFixed(bytes.Repeat([]byte("x"), 100), 32, 8)
	total = 0
	for _, b := range fixed {
		if len(b)%8 != 0 && total+len(b) != 100 {
			t.Fatalf("block of %d not a record multiple", len(b))
		}
		total += len(b)
	}
	if total != 100 {
		t.Fatal("SplitFixed lost bytes")
	}
	if len(SplitLines(nil, 10)) != 1 || len(SplitFixed(nil, 10, 2)) != 1 {
		t.Fatal("empty inputs should yield one empty block")
	}
}
