package dfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"glasswing/internal/blockstore"
	"glasswing/internal/hw"
	"glasswing/internal/sim"
)

// RealFS is the on-disk counterpart of the simulated DFS: the same FS
// contract (named files, fixed-size replicated blocks, locality queries),
// but every block lives in a real per-node blockstore.Store under one root
// directory, and every read and write is actual file I/O. Engines written
// against FS run unchanged; the sim.Proc and timing models are simply not
// consulted — wall time on a real disk needs no simulation.
//
// The layout mirrors what the distributed runtime's workers keep on their
// scratch disks (node-<id>/<block>.blk), so the same knobs — block size,
// replication factor, locality-aware placement — mean the same thing in
// simulated and real runs. That correspondence is what lets the conformance
// suite compare the two substrates block for block.
type RealFS struct {
	Cluster     *hw.Cluster
	BlockSize   int64
	Replication int

	stores []*blockstore.Store
	mu     sync.Mutex
	files  map[string]*File
	ids    map[string][]int // file name -> blockstore id per block
	nextID int

	// ReadsLocal / ReadsRemote count ReadBlock calls served from the
	// reader's own store vs. another node's, for locality reporting.
	ReadsLocal  atomic.Int64
	ReadsRemote atomic.Int64
}

// NewReal creates a real on-disk file system rooted at dir, with one block
// store per cluster node (dir/node-<id>). The directory is created if
// missing; existing block files are adopted, matching blockstore.Open.
func NewReal(cluster *hw.Cluster, dir string, blockSize int64, replication int) (*RealFS, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("dfs: block size must be positive")
	}
	if replication < 1 {
		replication = 1
	}
	if replication > len(cluster.Nodes) {
		replication = len(cluster.Nodes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: real root: %w", err)
	}
	r := &RealFS{
		Cluster:     cluster,
		BlockSize:   blockSize,
		Replication: replication,
		files:       make(map[string]*File),
		ids:         make(map[string][]int),
	}
	for _, n := range cluster.Nodes {
		s, err := blockstore.Open(filepath.Join(dir, fmt.Sprintf("node-%d", n.ID)))
		if err != nil {
			return nil, err
		}
		r.stores = append(r.stores, s)
	}
	return r, nil
}

// Name implements FS.
func (r *RealFS) Name() string { return "realFS" }

// Open implements FS.
func (r *RealFS) Open(name string) (*File, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.files[name]
	if !ok {
		return nil, fmt.Errorf("realfs: no such file %q", name)
	}
	return f, nil
}

// Exists reports whether a file is stored.
func (r *RealFS) Exists(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.files[name]
	return ok
}

func (r *RealFS) split(data []byte) [][]byte {
	var chunks [][]byte
	for off := int64(0); off < int64(len(data)); off += r.BlockSize {
		end := off + r.BlockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		chunks = append(chunks, data[off:end])
	}
	if len(chunks) == 0 {
		chunks = [][]byte{nil}
	}
	return chunks
}

// nodeIndex maps a node to its store slot.
func (r *RealFS) nodeIndex(n *hw.Node) int {
	for i, c := range r.Cluster.Nodes {
		if c == n {
			return i
		}
	}
	return -1
}

// store writes pre-split blocks under name: block i's replicas land on the
// writer (when given, HDFS's writer-first policy) or node i%N, then the
// following nodes in ring order — the same wheel blockstore.Place deals, so
// simulated and real placements agree. Caller holds r.mu.
func (r *RealFS) store(writer *hw.Node, name string, blocks [][]byte, repl int) (*File, error) {
	if repl <= 0 {
		repl = r.Replication
	}
	nNodes := len(r.Cluster.Nodes)
	if repl > nNodes {
		repl = nNodes
	}
	f := &File{FileName: name}
	var ids []int
	for i, c := range blocks {
		f.Size += int64(len(c))
		first := i % nNodes
		if writer != nil {
			first = r.nodeIndex(writer)
		}
		id := r.nextID
		r.nextID++
		b := &Block{Index: i}
		for j := 0; j < repl; j++ {
			slot := (first + j) % nNodes
			if err := r.stores[slot].Put(id, c); err != nil {
				return nil, err
			}
			b.Locations = append(b.Locations, r.Cluster.Nodes[slot])
		}
		f.Blocks = append(f.Blocks, b)
		ids = append(ids, id)
	}
	r.files[name] = f
	r.ids[name] = ids
	return f, nil
}

// Write implements FS: real replicated writes, no virtual time charged.
func (r *RealFS) Write(_ *sim.Proc, writer *hw.Node, name string, data []byte, replication int) (*File, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store(writer, name, r.split(data), replication)
}

// Preload stores a file; on the real backend preloading IS writing — there
// is no virtual clock to spare. Implements Preloader.
func (r *RealFS) Preload(name string, data []byte, replication int) *File {
	f, err := r.Write(nil, nil, name, data, replication)
	if err != nil {
		panic(fmt.Sprintf("dfs: real preload %q: %v", name, err))
	}
	return f
}

// PreloadBlocks stores a file from pre-split blocks. Implements Preloader.
func (r *RealFS) PreloadBlocks(name string, blocks [][]byte, replication int) *File {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(blocks) == 0 {
		blocks = [][]byte{nil}
	}
	f, err := r.store(nil, name, blocks, replication)
	if err != nil {
		panic(fmt.Sprintf("dfs: real preload %q: %v", name, err))
	}
	return f
}

// LocalTo implements FS: true when the reader's own store holds the block.
func (r *RealFS) LocalTo(f *File, idx int, n *hw.Node) bool {
	i := r.nodeIndex(n)
	if i < 0 || idx < 0 || idx >= len(f.Blocks) {
		return false
	}
	r.mu.Lock()
	ids, ok := r.ids[f.FileName]
	r.mu.Unlock()
	if !ok {
		return false
	}
	return r.stores[i].Has(ids[idx])
}

// ReadBlock implements FS: served from the reader's own store when a replica
// is local, otherwise streamed out of the first holder's store. Both paths
// are real disk reads; the locality counters record which one ran.
func (r *RealFS) ReadBlock(_ *sim.Proc, reader *hw.Node, f *File, idx int) ([]byte, error) {
	if idx < 0 || idx >= len(f.Blocks) {
		return nil, fmt.Errorf("realfs: block %d out of range for %q (%d blocks)", idx, f.FileName, len(f.Blocks))
	}
	r.mu.Lock()
	ids, ok := r.ids[f.FileName]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("realfs: %q has no stored blocks", f.FileName)
	}
	id := ids[idx]
	if i := r.nodeIndex(reader); i >= 0 && r.stores[i].Has(id) {
		r.ReadsLocal.Add(1)
		return r.stores[i].ReadAll(id)
	}
	for _, loc := range f.Blocks[idx].Locations {
		if i := r.nodeIndex(loc); i >= 0 && r.stores[i].Has(id) {
			r.ReadsRemote.Add(1)
			return r.stores[i].ReadAll(id)
		}
	}
	return nil, fmt.Errorf("realfs: block %d of %q lost on all replicas", idx, f.FileName)
}

var _ Preloader = (*RealFS)(nil)
