package glasswing

import (
	"glasswing/internal/dfs"
	"glasswing/internal/native"
)

// The native runtime: the same Glasswing pipeline and application API
// executing on the real host with genuine goroutine parallelism, real spill
// files and wall-clock timing. The simulated runtime (NewCluster + Run)
// reproduces the paper's cluster/GPU evaluation; this one is for pointing
// at actual data.

// NativeConfig tunes the native pipeline (worker counts, partitions,
// buffering, collector, spill threshold).
type NativeConfig = native.Config

// NativeResult reports a native run with wall-clock phase times.
type NativeResult = native.Result

// RunNative executes app over the input blocks on the real host.
func RunNative(app *App, blocks [][]byte, cfg NativeConfig) (*NativeResult, error) {
	return native.Run(app, blocks, cfg)
}

// SplitText chops data into ~blockSize chunks on line boundaries (the map
// chunk unit for text inputs).
func SplitText(data []byte, blockSize int64) [][]byte {
	return dfs.SplitLines(data, blockSize)
}

// SplitRecords chops data into ~blockSize chunks on fixed record
// boundaries (the map chunk unit for binary inputs).
func SplitRecords(data []byte, blockSize, recordSize int64) [][]byte {
	return dfs.SplitFixed(data, blockSize, recordSize)
}
