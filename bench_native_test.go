package glasswing

// Wall-clock benchmarks of the NATIVE runtime (real goroutines, real
// allocations — unlike the simulator benchmarks in bench_test.go, ns/op,
// B/op and allocs/op here ARE the product). The scenario table is pinned in
// internal/nativebench and shared with `go run ./cmd/nativebench`, which
// writes the tracked trajectory file BENCH_native.json.
//
// Run just these with:
//
//	go test -bench 'Native' -run '^$' -benchmem .

import (
	"testing"

	"glasswing/internal/nativebench"
)

func BenchmarkNative(b *testing.B) {
	for _, s := range nativebench.Scenarios() {
		b.Run(s.Name, func(b *testing.B) { nativebench.Bench(b, s) })
	}
}

// BenchmarkNativeDist times the distributed runtime's pinned loopback
// scenarios: a coordinator plus three workers over real TCP in this
// process, network shuffle included.
func BenchmarkNativeDist(b *testing.B) {
	for _, s := range nativebench.DistScenarios() {
		b.Run(s.Name, func(b *testing.B) { nativebench.BenchDist(b, s) })
	}
}
