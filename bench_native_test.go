package glasswing

// Wall-clock benchmarks of the NATIVE runtime (real goroutines, real
// allocations — unlike the simulator benchmarks in bench_test.go, ns/op,
// B/op and allocs/op here ARE the product). The scenario table is pinned in
// internal/nativebench and shared with `go run ./cmd/nativebench`, which
// writes the tracked trajectory file BENCH_native.json.
//
// Run just these with:
//
//	go test -bench 'Native' -run '^$' -benchmem .

import (
	"testing"
	"time"

	"glasswing/internal/native"
	"glasswing/internal/nativebench"
)

func BenchmarkNative(b *testing.B) {
	for _, s := range nativebench.Scenarios() {
		b.Run(s.Name, func(b *testing.B) { nativebench.Bench(b, s) })
	}
}

// TestNativeBenchSmokeWCHash is the batch-kernel throughput floor: the
// allocation-critical wc-hash scenario must clear the pre-batch baseline's
// 1,049,340 pairs/s. The floor sits ~2.5x below what the batch path
// measures on a single pinned core, so it only trips if the vectorized map
// path stops being taken (e.g. the batch kernel silently falls back to the
// per-record shim) — ordinary host noise cannot close a 2.5x gap. Skipped
// under the race detector, whose slowdown swamps any throughput signal.
func TestNativeBenchSmokeWCHash(t *testing.T) {
	if nativebench.RaceEnabled {
		t.Skip("throughput floor is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping throughput smoke in -short mode")
	}
	const floorPairsPerSec = 1049340
	for _, s := range nativebench.Scenarios() {
		if s.Name != "wc-hash" {
			continue
		}
		app, blocks, cfg := s.Build()
		best := 0.0
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			res, err := native.Run(app, blocks, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if pps := float64(res.IntermediatePairs) / time.Since(t0).Seconds(); pps > best {
				best = pps
			}
		}
		if best < floorPairsPerSec {
			t.Fatalf("wc-hash best of 3: %.0f pairs/s, floor %d — batch map path regressed", best, floorPairsPerSec)
		}
		return
	}
	t.Fatal("wc-hash scenario missing from the pinned table")
}

// BenchmarkNativeDist times the distributed runtime's pinned loopback
// scenarios: a coordinator plus three workers over real TCP in this
// process, network shuffle included.
func BenchmarkNativeDist(b *testing.B) {
	for _, s := range nativebench.DistScenarios() {
		b.Run(s.Name, func(b *testing.B) { nativebench.BenchDist(b, s) })
	}
}
