// TeraSort: totally ordered sorting of 100-byte records across a cluster.
//
// TS exercises the parts of Glasswing the counting workloads do not: a
// sampled range partitioner (output partition N-1's keys all precede
// partition N's), no reduce function at all (the framework's per-partition
// merge is the final processing), out-of-core intermediate data, and output
// replication 1, exactly as the paper configures it (§IV-A1).
//
// Run it with:
//
//	go run ./examples/terasort
package main

import (
	"bytes"
	"fmt"
	"log"

	"glasswing"
	"glasswing/internal/apps"
	"glasswing/internal/workload"
)

func main() {
	const records = 50000
	data := apps.TSData(13, records)
	fmt.Printf("terasort: %d records (%d KiB), 8-node cluster, output replication 1\n",
		records, len(data)>>10)

	cluster := glasswing.NewCluster(glasswing.ClusterConfig{
		Nodes:     8,
		BlockSize: 64 << 10,
		SlowDown:  500,
	})
	cluster.LoadRecords("teragen", data, workload.TeraRecordSize)

	result, err := cluster.Run(glasswing.TeraSortApp(), glasswing.Config{
		Input:             []string{"teragen"},
		Collector:         glasswing.BufferPool,
		Partitioner:       glasswing.TeraSortPartitioner(data, 64),
		OutputReplication: 1,
		Compress:          true,
		// Force out-of-core intermediate handling: the cache threshold is
		// far below the intermediate volume, so partitions spill and the
		// continuous merger earns its keep.
		CacheThreshold: int64(len(data)) / 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(glasswing.Summary(result))

	// Verify global order and multiset equality with the input.
	if err := apps.VerifyTeraSort(result.Output(), data); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	out := result.Output()
	fmt.Printf("output totally ordered: %d records, first key %q, last key %q\n",
		len(out), out[0].Key, out[len(out)-1].Key)

	// Show the partition boundaries really are ranges.
	prev := out[0].Key
	crossings := 0
	for _, p := range out[1:] {
		if bytes.Compare(prev, p.Key) > 0 {
			crossings++
		}
		prev = p.Key
	}
	fmt.Printf("order violations across all partition boundaries: %d\n", crossings)
}
