// Log analysis: the paper's Pageview Count (PVC) workload — count URL
// frequencies over web-server logs on HDFS, comparing cluster sizes.
//
// PVC is the paper's most I/O-bound application: its kernel does almost no
// work per record, the URL key space is massive and sparse, and the hash
// table sees almost no repetition. The interesting output is how execution
// time scales with nodes and where the pipeline spends its time.
//
// Run it with:
//
//	go run ./examples/loganalysis
package main

import (
	"fmt"
	"log"

	"glasswing"
	"glasswing/internal/apps"
	"glasswing/internal/workload"
)

func main() {
	const logBytes = 2 << 20
	data := workload.WebLog(7, logBytes)
	fmt.Printf("analyzing %d KiB of web-server logs (simulating ~%d GiB via 2500x time dilation)\n\n",
		logBytes>>10, logBytes*2500>>30)

	var oneNode float64
	for _, nodes := range []int{1, 2, 4, 8} {
		cluster := glasswing.NewCluster(glasswing.ClusterConfig{
			Nodes:     nodes,
			BlockSize: 32 << 10,
			SlowDown:  2500, // MB-scale real data stands in for GB-scale
		})
		cluster.LoadText("access.log", data)

		result, err := cluster.Run(glasswing.PageviewCountApp(), glasswing.Config{
			Input:       []string{"access.log"},
			Collector:   glasswing.HashTable,
			UseCombiner: true,
			Compress:    true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if nodes == 1 {
			oneNode = result.JobTime
			// Check the answer once against an independent count.
			_, want := apps.PVCData(7, logBytes)
			if err := apps.VerifyCounts(result.Output(), want); err != nil {
				log.Fatalf("verification failed: %v", err)
			}
		}
		st := result.MaxMapStage()
		fmt.Printf("%2d node(s): job %7.1fs  speedup %4.2fx  distinct URLs %d\n",
			nodes, result.JobTime, oneNode/result.JobTime, result.OutputPairs)
		fmt.Printf("            pipeline busy: input=%.1fs kernel=%.1fs partition=%.1fs (I/O-bound: input dominates)\n",
			st.Input, st.Kernel, st.Partition)
	}
}
