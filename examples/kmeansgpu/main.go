// K-Means on CPU vs GPU: the paper's vertical-scalability story.
//
// The same KMeans application — identical map/combine/reduce kernels, same
// Configuration API — runs first on the node's multi-core CPU and then on
// its GTX480, by flipping only Config.Device. On the GPU the pipeline's
// Stage and Retrieve stages come alive (host<->device PCIe transfers) and
// the partitioning stage speeds up because kernel threads no longer compete
// for host cores (paper Table III).
//
// Run it with:
//
//	go run ./examples/kmeansgpu
package main

import (
	"fmt"
	"log"

	"glasswing"
	"glasswing/internal/apps"
)

func main() {
	const (
		points = 1 << 16
		dim    = 4
		k      = 128
	)
	data, spec := apps.KMData(11, points, dim, k)
	// Charge the paper's 1024-center configuration while computing k=128
	// for real (see DESIGN.md on cost-model scaling).
	spec.ModelCenters = 1024
	app := glasswing.KMeansApp(spec)

	fmt.Printf("k-means: %d points, %d dims, %d centers (one iteration)\n\n", points, dim, k)

	run := func(label string, device int, gpu bool) float64 {
		cluster := glasswing.NewCluster(glasswing.ClusterConfig{
			Nodes:     1,
			GPU:       true,
			FS:        glasswing.LocalFS,
			BlockSize: 16 << 10,
			SlowDown:  300,
		})
		cluster.LoadRecords("points", data, int64(dim*4))
		cfg := glasswing.Config{
			Input:       []string{"points"},
			Device:      device,
			Collector:   glasswing.HashTable,
			UseCombiner: true,
		}
		result, err := cluster.RunWithBroadcast(app, cfg, spec.CentersBytes())
		if err != nil {
			log.Fatal(err)
		}
		if err := apps.VerifyKMeans(result.Output(), data, spec); err != nil {
			log.Fatalf("%s verification failed: %v", label, err)
		}
		st := result.MaxMapStage()
		fmt.Printf("%-4s job %6.2fs | map stages: input=%.2f stage=%.3f kernel=%.2f retrieve=%.3f partition=%.2f\n",
			label, result.JobTime, st.Input, st.Stage, st.Kernel, st.Retrieve, st.Partition)
		return result.JobTime
	}

	cpu := run("CPU", 0, false)
	gpu := run("GPU", 1, true)
	fmt.Printf("\nGPU speedup: %.1fx (identical kernels, outputs verified equal)\n", cpu/gpu)
}
