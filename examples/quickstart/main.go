// Quickstart: count words on a 4-node simulated cluster.
//
// This is the smallest complete Glasswing program: build a cluster, load a
// dataset, run a MapReduce job with the tuned collector configuration, and
// inspect the result — including the 5-stage pipeline breakdown that is the
// paper's core contribution.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"glasswing"
)

func main() {
	// A toy corpus; real runs load generated datasets (see the other
	// examples) or your own bytes.
	var corpus strings.Builder
	for i := 0; i < 3000; i++ {
		corpus.WriteString("the quick brown fox jumps over the lazy dog\n")
		if i%3 == 0 {
			corpus.WriteString("pack my box with five dozen liquor jugs\n")
		}
	}

	cluster := glasswing.NewCluster(glasswing.ClusterConfig{
		Nodes:     4,
		BlockSize: 16 << 10,
	})
	cluster.LoadText("corpus", []byte(corpus.String()))

	result, err := cluster.Run(glasswing.WordCountApp(), glasswing.Config{
		Input:       []string{"corpus"},
		Collector:   glasswing.HashTable, // store each key once (§III-F)
		UseCombiner: true,                // aggregate counts on-device
		Compress:    true,                // compressed intermediate runs (§III-B)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(glasswing.Summary(result))
	st := result.MaxMapStage()
	fmt.Printf("map stages (busy seconds): input=%.3f kernel=%.3f partition=%.3f\n",
		st.Input, st.Kernel, st.Partition)

	// Print the five most frequent words.
	type wc struct {
		word  string
		count uint32
	}
	var counts []wc
	for _, pair := range result.Output() {
		var n uint32
		for i := 3; i >= 0; i-- {
			n = n<<8 | uint32(pair.Value[i])
		}
		counts = append(counts, wc{string(pair.Key), n})
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].count > counts[j].count })
	fmt.Println("top words:")
	for i := 0; i < 5 && i < len(counts); i++ {
		fmt.Printf("  %-8s %d\n", counts[i].word, counts[i].count)
	}
}
