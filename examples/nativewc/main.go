// Native word count: the Glasswing pipeline on the REAL host.
//
// Where the other examples run on the simulated cluster (reproducing the
// paper's evaluation), this one uses the native runtime: real goroutine
// parallelism, real wall-clock time, real spill files. It counts words over
// the Go source files of this repository.
//
// Run it from the repository root with:
//
//	go run ./examples/nativewc [dir]
package main

import (
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"glasswing"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}

	// Gather the corpus: every .go file under root.
	var corpus []byte
	files := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		corpus = append(corpus, data...)
		if len(corpus) > 0 && corpus[len(corpus)-1] != '\n' {
			corpus = append(corpus, '\n')
		}
		files++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if files == 0 {
		log.Fatalf("no .go files under %q — run from the repository root", root)
	}

	blocks := glasswing.SplitText(corpus, 64<<10)
	res, err := glasswing.RunNative(glasswing.WordCountApp(), blocks, glasswing.NativeConfig{
		Collector:   glasswing.HashTable,
		UseCombiner: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("counted %d files (%d KiB, %d chunks) in %v wall time\n",
		files, res.InputBytes>>10, len(blocks), res.Total)
	fmt.Printf("phases: map %v, merge %v, reduce %v; %d intermediate pairs, %d distinct tokens\n",
		res.MapElapsed, res.MergeDelay, res.ReduceElapsed, res.IntermediatePairs, res.OutputPairs)

	type tokenCount struct {
		token string
		n     uint32
	}
	var counts []tokenCount
	for _, pr := range res.Output() {
		var n uint32
		for i := 3; i >= 0; i-- {
			n = n<<8 | uint32(pr.Value[i])
		}
		counts = append(counts, tokenCount{string(pr.Key), n})
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].n > counts[j].n })
	fmt.Println("most frequent tokens in this repository's Go source:")
	for i := 0; i < 10 && i < len(counts); i++ {
		fmt.Printf("  %6d  %s\n", counts[i].n, counts[i].token)
	}
}
